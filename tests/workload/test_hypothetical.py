"""Hypothetical (alternate measure / alternate domain) query tests.

Section 3.1 lists these as MPF query variants whose optimization the
paper leaves as future work; we implement both the naive rewrite path
(patch relations, re-evaluate) and the incremental VE-cache path
(patch one calibrated table, re-propagate) and verify they agree.
"""

from functools import reduce

import pytest

from repro.algebra import (
    alter_domain,
    alter_measure,
    apply_patch,
    marginalize,
    measure_ratio_relation,
    product_join,
)
from repro.data import FunctionalRelation, var
from repro.errors import SchemaError, WorkloadError
from repro.semiring import SUM_PRODUCT
from repro.workload import build_ve_cache


def _joint(relations):
    return reduce(
        lambda a, b: product_join(a, b, SUM_PRODUCT), relations
    )


class TestAlterMeasure:
    def test_single_row(self):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows(
            [a], [(0, 1.0), (1, 2.0), (2, 3.0)], name="r"
        )
        out = alter_measure(rel, {"a": 1}, 9.0)
        assert out.value_at({"a": 1}) == 9.0
        assert out.value_at({"a": 0}) == 1.0
        # Original untouched.
        assert rel.value_at({"a": 1}) == 2.0

    def test_partial_key_updates_all_matches(self):
        a, b = var("a", 2), var("b", 2)
        rel = FunctionalRelation.from_rows(
            [a, b],
            [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)],
            name="r",
        )
        out = alter_measure(rel, {"a": 0}, 5.0)
        assert out.value_at({"a": 0, "b": 0}) == 5.0
        assert out.value_at({"a": 0, "b": 1}) == 5.0
        assert out.value_at({"a": 1, "b": 0}) == 3.0

    def test_no_match_raises(self):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows([a], [(0, 1.0)], name="r")
        with pytest.raises(SchemaError):
            alter_measure(rel, {"a": 2}, 9.0)

    def test_unknown_variable(self):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows([a], [(0, 1.0)], name="r")
        with pytest.raises(SchemaError):
            alter_measure(rel, {"z": 0}, 9.0)

    def test_empty_assignment_rejected(self):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows([a], [(0, 1.0)], name="r")
        with pytest.raises(SchemaError):
            alter_measure(rel, {}, 9.0)


class TestAlterDomain:
    def test_transfer_without_collision(self):
        c, t = var("cid", 2), var("tid", 3)
        deals = FunctionalRelation.from_rows(
            [c, t], [(0, 0, 0.9), (1, 1, 0.8)], name="deals"
        )
        out = alter_domain(deals, {"cid": 0, "tid": 0}, {"tid": 2},
                           SUM_PRODUCT)
        assert out.value_at({"cid": 0, "tid": 2}) == 0.9
        with pytest.raises(KeyError):
            out.value_at({"cid": 0, "tid": 0})

    def test_transfer_with_collision_plus_merges(self):
        c, t = var("cid", 2), var("tid", 2)
        deals = FunctionalRelation.from_rows(
            [c, t], [(0, 0, 0.9), (0, 1, 0.5)], name="deals"
        )
        out = alter_domain(deals, {"cid": 0, "tid": 0}, {"tid": 1},
                           SUM_PRODUCT)
        assert out.ntuples == 1
        assert out.value_at({"cid": 0, "tid": 1}) == pytest.approx(1.4)

    def test_no_match_raises(self):
        c = var("cid", 2)
        rel = FunctionalRelation.from_rows([c], [(0, 1.0)], name="r")
        with pytest.raises(SchemaError):
            alter_domain(rel, {"cid": 1}, {"cid": 0}, SUM_PRODUCT)


class TestPatch:
    def test_ratio_relation(self):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows(
            [a], [(0, 2.0), (1, 4.0)], name="r"
        )
        patch = measure_ratio_relation(rel, {"a": 1}, 8.0, SUM_PRODUCT)
        assert patch.ntuples == 1
        assert patch.value_at({"a": 1}) == pytest.approx(2.0)

    def test_apply_patch_left_outer(self):
        a, b = var("a", 2), var("b", 2)
        target = FunctionalRelation.from_rows(
            [a, b], [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)], name="t"
        )
        patch = FunctionalRelation.from_rows([a], [(0, 10.0)], name="p")
        out = apply_patch(target, patch, SUM_PRODUCT)
        assert out.value_at({"a": 0, "b": 0}) == 10.0
        assert out.value_at({"a": 0, "b": 1}) == 20.0
        assert out.value_at({"a": 1, "b": 0}) == 3.0  # untouched

    def test_patch_vars_must_be_subset(self):
        a, b = var("a", 2), var("b", 2)
        target = FunctionalRelation.from_rows([a], [(0, 1.0)], name="t")
        patch = FunctionalRelation.from_rows(
            [a, b], [(0, 0, 2.0)], name="p"
        )
        with pytest.raises(SchemaError):
            apply_patch(target, patch, SUM_PRODUCT)


class TestIncrementalCacheUpdate:
    def test_matches_rebuild(self, tiny_supply_chain):
        """The incremental alternate-measure path equals rebuilding the
        cache from the patched base relation."""
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)

        contracts = sc.catalog.relation("contracts")
        pid0 = int(contracts.columns["pid"][0])
        sid0 = int(contracts.columns["sid"][0])
        assignment = {"pid": pid0, "sid": sid0}

        updated = cache.with_alternate_measure(
            "contracts", assignment, 777.0
        )
        patched = [
            alter_measure(r, assignment, 777.0)
            if r.name == "contracts" else r
            for r in relations
        ]
        rebuilt = build_ve_cache(
            patched, SUM_PRODUCT, order=list(cache.elimination_order)
        )
        for v in ("pid", "sid", "wid", "cid", "tid"):
            assert updated.answer(v).equals(
                rebuilt.answer(v), SUM_PRODUCT, ignore_zero_rows=True
            ), v

    def test_matches_joint_oracle(self, tiny_supply_chain):
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        contracts = sc.catalog.relation("contracts")
        pid0 = int(contracts.columns["pid"][0])
        sid0 = int(contracts.columns["sid"][0])
        assignment = {"pid": pid0, "sid": sid0}

        updated = cache.with_alternate_measure("contracts", assignment, 3.5)
        patched = [
            alter_measure(r, assignment, 3.5)
            if r.name == "contracts" else r
            for r in relations
        ]
        expected = marginalize(_joint(patched), ["wid"], SUM_PRODUCT)
        assert updated.answer("wid").equals(
            expected, SUM_PRODUCT, ignore_zero_rows=True
        )

    def test_composes_with_evidence(self, tiny_supply_chain):
        from repro.algebra import restrict

        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        contracts = sc.catalog.relation("contracts")
        pid0 = int(contracts.columns["pid"][0])
        sid0 = int(contracts.columns["sid"][0])
        assignment = {"pid": pid0, "sid": sid0}

        updated = cache.with_alternate_measure("contracts", assignment, 2.0)
        conditioned = updated.absorb_evidence({"tid": 1})
        patched = [
            alter_measure(r, assignment, 2.0)
            if r.name == "contracts" else r
            for r in relations
        ]
        expected = marginalize(
            restrict(_joint(patched), {"tid": 1}), ["cid"], SUM_PRODUCT
        )
        assert conditioned.answer("cid").equals(
            expected, SUM_PRODUCT, ignore_zero_rows=True
        )

    def test_successive_updates_compose(self, tiny_supply_chain):
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        transporters = sc.catalog.relation("transporters")
        first = cache.with_alternate_measure(
            "transporters", {"tid": 0}, 5.0
        )
        second = first.with_alternate_measure(
            "transporters", {"tid": 1}, 6.0
        )
        patched = [
            alter_measure(
                alter_measure(r, {"tid": 0}, 5.0), {"tid": 1}, 6.0
            )
            if r.name == "transporters" else r
            for r in relations
        ]
        expected = marginalize(_joint(patched), ["cid"], SUM_PRODUCT)
        assert second.answer("cid").equals(
            expected, SUM_PRODUCT, ignore_zero_rows=True
        )

    def test_unknown_base_table(self, tiny_supply_chain):
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        with pytest.raises(WorkloadError):
            cache.with_alternate_measure("ghost", {"tid": 0}, 1.0)

    def test_original_cache_unchanged(self, tiny_supply_chain):
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        before = cache.answer("tid")
        cache.with_alternate_measure("transporters", {"tid": 0}, 99.0)
        after = cache.answer("tid")
        assert before.equals(after, SUM_PRODUCT)


class TestEngineHypothetical:
    @pytest.fixture
    def db(self, tiny_supply_chain):
        from repro import Database

        database = Database()
        for t in tiny_supply_chain.tables:
            database.register(tiny_supply_chain.catalog.relation(t))
        database.create_view("invest", tiny_supply_chain.tables)
        return database

    def _query(self, db, group_by):
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        return MPFQuery(view, (group_by,))

    def test_alternate_measure_query(self, db, tiny_supply_chain):
        sc = tiny_supply_chain
        contracts = sc.catalog.relation("contracts")
        pid0 = int(contracts.columns["pid"][0])
        sid0 = int(contracts.columns["sid"][0])
        query = self._query(db, "wid")
        hypothetical = db.run_hypothetical(
            query,
            measure_updates={
                "contracts": ({"pid": pid0, "sid": sid0}, 1234.5)
            },
        )
        factual = db.run_query(query)
        # The hypothetical repricing must change the answer...
        assert not hypothetical.result.equals(factual.result, SUM_PRODUCT)
        # ...and match the oracle over patched relations.
        patched = [
            alter_measure(
                sc.catalog.relation(t), {"pid": pid0, "sid": sid0}, 1234.5
            )
            if t == "contracts" else sc.catalog.relation(t)
            for t in sc.tables
        ]
        expected = marginalize(_joint(patched), ["wid"], SUM_PRODUCT)
        assert hypothetical.result.equals(expected, SUM_PRODUCT)

    def test_alternate_domain_query(self, db, tiny_supply_chain):
        sc = tiny_supply_chain
        deals = sc.catalog.relation("ctdeals")
        cid0 = int(deals.columns["cid"][0])
        tid0 = int(deals.columns["tid"][0])
        new_tid = (tid0 + 1) % sc.catalog.variable("tid").size
        query = self._query(db, "cid")
        hypothetical = db.run_hypothetical(
            query,
            domain_updates={
                "ctdeals": ({"cid": cid0, "tid": tid0}, {"tid": new_tid})
            },
        )
        patched = [
            alter_domain(
                sc.catalog.relation(t),
                {"cid": cid0, "tid": tid0},
                {"tid": new_tid},
                SUM_PRODUCT,
            )
            if t == "ctdeals" else sc.catalog.relation(t)
            for t in sc.tables
        ]
        expected = marginalize(_joint(patched), ["cid"], SUM_PRODUCT)
        assert hypothetical.result.equals(
            expected, SUM_PRODUCT, ignore_zero_rows=True
        )

    def test_real_catalog_untouched(self, db, tiny_supply_chain):
        sc = tiny_supply_chain
        query = self._query(db, "wid")
        before = db.run_query(query).result
        db.run_hypothetical(
            query,
            measure_updates={"transporters": ({"tid": 0}, 99.0)},
        )
        after = db.run_query(query).result
        assert before.equals(after, SUM_PRODUCT)

    def test_update_on_foreign_table_rejected(self, db):
        from repro.errors import QueryError

        query = self._query(db, "wid")
        with pytest.raises(QueryError):
            db.run_hypothetical(
                query, measure_updates={"ghost": ({"tid": 0}, 1.0)}
            )
