"""Unit tests for schema graphs and acyclicity (Theorems 7 & 8)."""

import networkx as nx

from repro.workload import (
    gyo_reduction,
    has_running_intersection,
    is_acyclic_schema,
    junction_tree_of_schema,
    relation_graph,
    variable_graph,
)

SUPPLY_SCHEMA = {
    "contracts": ("pid", "sid"),
    "warehouses": ("wid", "cid"),
    "transporters": ("tid",),
    "location": ("pid", "wid"),
    "ctdeals": ("cid", "tid"),
}

CYCLIC_SCHEMA = dict(SUPPLY_SCHEMA, stdeals=("sid", "tid"))


class TestRelationGraph:
    def test_supply_chain_is_a_path(self):
        g = relation_graph(SUPPLY_SCHEMA)
        assert g.number_of_edges() == 4
        degrees = sorted(d for _, d in g.degree)
        assert degrees == [1, 1, 2, 2, 2]

    def test_edge_annotations(self):
        g = relation_graph(SUPPLY_SCHEMA)
        assert g.edges["contracts", "location"]["shared"] == {"pid"}
        assert g.edges["contracts", "location"]["weight"] == 1

    def test_stdeals_closes_the_cycle(self):
        g = relation_graph(CYCLIC_SCHEMA)
        assert nx.cycle_basis(g)


class TestVariableGraph:
    def test_acyclic_schema_chordal(self):
        """Figure 13: the original variable graph is (trivially)
        chordal."""
        g = variable_graph(SUPPLY_SCHEMA)
        assert nx.is_chordal(g)
        assert set(g.nodes) == {"pid", "sid", "wid", "cid", "tid"}

    def test_stdeals_breaks_chordality(self):
        """Adding stdeals creates the chordless 5-cycle the paper
        describes (sid-pid-wid-cid-tid-sid)."""
        g = variable_graph(CYCLIC_SCHEMA)
        assert not nx.is_chordal(g)
        cycle = ["sid", "pid", "wid", "cid", "tid"]
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert g.has_edge(a, b)

    def test_isolated_single_variable_relation(self):
        g = variable_graph({"t": ("x",)})
        assert list(g.nodes) == ["x"]
        assert g.number_of_edges() == 0


class TestRunningIntersection:
    def test_supply_chain_tree_has_rip(self):
        tree = junction_tree_of_schema(SUPPLY_SCHEMA)
        assert tree is not None
        assert has_running_intersection(tree, SUPPLY_SCHEMA)

    def test_cyclic_schema_has_no_junction_tree(self):
        assert junction_tree_of_schema(CYCLIC_SCHEMA) is None

    def test_bad_tree_detected(self):
        # A star tree rooted at transporters violates RIP: the path
        # contracts-transporters-location does not carry pid.
        tree = nx.Graph()
        tree.add_edges_from(
            ("transporters", other)
            for other in SUPPLY_SCHEMA
            if other != "transporters"
        )
        assert not has_running_intersection(tree, SUPPLY_SCHEMA)


class TestGYO:
    def test_acyclic_reduces_to_empty(self):
        assert gyo_reduction(SUPPLY_SCHEMA) == []
        assert is_acyclic_schema(SUPPLY_SCHEMA)

    def test_cyclic_leaves_residue(self):
        residue = gyo_reduction(CYCLIC_SCHEMA)
        assert residue
        assert not is_acyclic_schema(CYCLIC_SCHEMA)

    def test_triangle_hypergraph_cyclic(self):
        schema = {"r1": ("a", "b"), "r2": ("b", "c"), "r3": ("a", "c")}
        assert not is_acyclic_schema(schema)

    def test_covered_triangle_acyclic(self):
        # Adding a covering relation makes the triangle α-acyclic.
        schema = {
            "r1": ("a", "b"),
            "r2": ("b", "c"),
            "r3": ("a", "c"),
            "big": ("a", "b", "c"),
        }
        assert is_acyclic_schema(schema)

    def test_single_relation_acyclic(self):
        assert is_acyclic_schema({"r": ("a", "b", "c")})

    def test_empty_schema_acyclic(self):
        assert is_acyclic_schema({})

    def test_disconnected_acyclic(self):
        schema = {"r1": ("a", "b"), "r2": ("x", "y")}
        assert is_acyclic_schema(schema)
        tree = junction_tree_of_schema(schema)
        assert tree is not None  # a forest
