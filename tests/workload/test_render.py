"""DOT rendering tests (Figures 13-15 as text artifacts)."""

from repro.semiring import SUM_PRODUCT
from repro.workload import (
    build_junction_tree,
    junction_tree_dot,
    triangulate,
    triangulation_dot,
    variable_graph,
    variable_graph_dot,
)

CYCLIC_SCHEMA = {
    "contracts": ("pid", "sid"),
    "warehouses": ("wid", "cid"),
    "transporters": ("tid",),
    "location": ("pid", "wid"),
    "ctdeals": ("cid", "tid"),
    "stdeals": ("sid", "tid"),
}


class TestVariableGraphDot:
    def test_figure13_shape(self):
        dot = variable_graph_dot(variable_graph(CYCLIC_SCHEMA))
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")
        for v in ("pid", "sid", "wid", "cid", "tid"):
            assert f'"{v}"' in dot
        assert '"sid" -- "tid"' in dot  # the stdeals edge

    def test_deterministic(self):
        g = variable_graph(CYCLIC_SCHEMA)
        assert variable_graph_dot(g) == variable_graph_dot(g)


class TestTriangulationDot:
    def test_fill_edges_dashed(self):
        g = variable_graph(CYCLIC_SCHEMA)
        result = triangulate(g, order=["tid", "sid"])
        dot = triangulation_dot(result)
        assert dot.count("style=dashed") == len(result.fill_edges)
        assert '"cid" -- "sid" [style=dashed]' in dot


class TestJunctionTreeDot:
    def test_figure15_rendering(self, cyclic_supply_chain):
        relations = [
            cyclic_supply_chain.catalog.relation(t)
            for t in cyclic_supply_chain.tables
        ]
        jt = build_junction_tree(relations, SUM_PRODUCT, order=["tid", "sid"])
        dot = junction_tree_dot(jt)
        assert "shape=box" in dot
        # Two tree edges with separator labels.
        assert dot.count(" -- ") == 2
        assert "label=" in dot
