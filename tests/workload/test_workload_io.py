"""Workload execution goes through the runtime and reports real IO."""

from repro.plans import ExecutionContext
from repro.semiring import SUM_PRODUCT
from repro.workload import (
    belief_propagation,
    bp_program_literal,
    build_junction_tree,
    build_ve_cache,
)


def _relations(sc):
    return [sc.catalog.relation(t) for t in sc.tables]


class TestVECacheIO:
    def test_build_reports_io(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        stats = cache.io_stats
        assert stats.page_reads > 0
        assert stats.operators_run > 0
        assert stats.elapsed() > 0

    def test_answers_accumulate_io(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        before = cache.io_stats.elapsed()
        cache.answer("wid")
        assert cache.io_stats.elapsed() > before

    def test_repeated_answer_hits_memo(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        first = cache.answer("wid")
        reads = cache.io_stats.page_reads
        hits = cache.io_stats.memo_hits
        again = cache.answer("wid")
        assert again.equals(first, SUM_PRODUCT)
        assert cache.io_stats.memo_hits > hits
        assert cache.io_stats.page_reads == reads

    def test_shared_context(self, tiny_supply_chain):
        ctx = ExecutionContext({}, SUM_PRODUCT)
        cache = build_ve_cache(
            _relations(tiny_supply_chain), SUM_PRODUCT, context=ctx
        )
        assert cache.io_stats is ctx.stats

    def test_evidence_absorption_charges_io(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        reduced = cache.absorb_evidence({"tid": 0})
        assert reduced.io_stats.operators_run > 0


class TestBPIO:
    def test_tree_bp_reports_io(self, tiny_supply_chain):
        result = belief_propagation(
            _relations(tiny_supply_chain), SUM_PRODUCT
        )
        assert result.stats is not None
        assert result.stats.operators_run > 0
        assert result.stats.elapsed() > 0

    def test_literal_bp_reports_io(self, tiny_supply_chain):
        sc = tiny_supply_chain
        result = bp_program_literal(
            _relations(sc), SUM_PRODUCT, order=list(sc.tables)
        )
        assert result.stats is not None
        assert result.stats.operators_run > 0

    def test_shared_context(self, tiny_supply_chain):
        ctx = ExecutionContext({}, SUM_PRODUCT)
        result = belief_propagation(
            _relations(tiny_supply_chain), SUM_PRODUCT, context=ctx
        )
        assert result.stats is ctx.stats


class TestJunctionTreeIO:
    def test_build_reports_io(self, cyclic_supply_chain):
        tree = build_junction_tree(
            _relations(cyclic_supply_chain), SUM_PRODUCT
        )
        assert tree.stats is not None
        assert tree.stats.page_reads > 0
        assert tree.stats.operators_run > 0

    def test_jt_then_bp_one_context(self, cyclic_supply_chain):
        """Junction tree + BP over it share one stats clock."""
        ctx = ExecutionContext({}, SUM_PRODUCT)
        tree = build_junction_tree(
            _relations(cyclic_supply_chain), SUM_PRODUCT, context=ctx
        )
        after_build = ctx.stats.elapsed()
        result = belief_propagation(
            tree.cliques, SUM_PRODUCT, tree=tree.tree, context=ctx
        )
        assert result.stats is ctx.stats
        assert ctx.stats.elapsed() > after_build
