"""Junction tree (Algorithm 5) tests, including the Figure 15 result."""

import networkx as nx
import pytest

from repro.errors import WorkloadError
from repro.semiring import SUM_PRODUCT
from repro.workload import (
    belief_propagation,
    build_junction_tree,
    satisfies_workload_invariant,
)


def _relations(sc):
    return [sc.catalog.relation(t) for t in sc.tables]


class TestFigure15:
    def test_clique_schema(self, cyclic_supply_chain):
        """Triangulating with tid, sid yields the Figure 15 schema:
        (sid, cid, tid), (pid, sid, cid), (pid, wid, cid)."""
        jt = build_junction_tree(
            _relations(cyclic_supply_chain), SUM_PRODUCT, order=["tid", "sid"]
        )
        scopes = {frozenset(rel.var_names) for rel in jt.cliques.values()}
        assert scopes == {
            frozenset(("sid", "cid", "tid")),
            frozenset(("pid", "sid", "cid")),
            frozenset(("pid", "wid", "cid")),
        }

    def test_tree_shape(self, cyclic_supply_chain):
        jt = build_junction_tree(
            _relations(cyclic_supply_chain), SUM_PRODUCT, order=["tid", "sid"]
        )
        assert nx.is_tree(jt.tree)
        assert jt.tree.number_of_nodes() == 3

    def test_every_base_relation_assigned(self, cyclic_supply_chain):
        sc = cyclic_supply_chain
        jt = build_junction_tree(_relations(sc), SUM_PRODUCT, order=["tid", "sid"])
        assert set(jt.assignment) == set(sc.tables)
        for table, clique in jt.assignment.items():
            table_vars = set(sc.catalog.stats(table).variables)
            clique_vars = set(jt.cliques[clique].var_names)
            assert table_vars <= clique_vars


class TestCorrectness:
    def test_bp_over_junction_tree_satisfies_invariant(
        self, cyclic_supply_chain
    ):
        """The full Algorithm 5 + Algorithm 4 pipeline on the cyclic
        schema: junction tree then BP restores Definition 5."""
        relations = _relations(cyclic_supply_chain)
        jt = build_junction_tree(relations, SUM_PRODUCT, order=["tid", "sid"])
        bp = belief_propagation(jt.cliques, SUM_PRODUCT, tree=jt.tree)
        assert satisfies_workload_invariant(bp.tables, relations, SUM_PRODUCT)

    def test_product_of_cliques_equals_joint(self, cyclic_supply_chain):
        """Before BP, the clique potentials are a factorization: their
        product join equals the full view."""
        from functools import reduce

        from repro.algebra import product_join

        relations = _relations(cyclic_supply_chain)
        jt = build_junction_tree(relations, SUM_PRODUCT, order=["tid", "sid"])
        joint_from_cliques = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            jt.cliques.values(),
        )
        joint = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT), relations
        )
        assert joint_from_cliques.equals(
            joint, SUM_PRODUCT, ignore_zero_rows=True
        )

    def test_acyclic_schema_passthrough(self, tiny_supply_chain):
        """On an already-acyclic schema the junction tree's cliques are
        the (merged) relation scopes and BP still works."""
        relations = _relations(tiny_supply_chain)
        jt = build_junction_tree(relations, SUM_PRODUCT)
        bp = belief_propagation(jt.cliques, SUM_PRODUCT, tree=jt.tree)
        assert satisfies_workload_invariant(bp.tables, relations, SUM_PRODUCT)


class TestValidation:
    def test_empty_schema_rejected(self):
        with pytest.raises(WorkloadError):
            build_junction_tree([], SUM_PRODUCT)

    def test_validate_raises_on_broken_tree(self, cyclic_supply_chain):
        jt = build_junction_tree(
            _relations(cyclic_supply_chain), SUM_PRODUCT, order=["tid", "sid"]
        )
        # Sabotage: replace the tree with a wrong-topology star.
        names = list(jt.cliques)
        bad = nx.Graph()
        # Connect the two non-adjacent end cliques directly.
        bad.add_edge(names[0], names[2])
        bad.add_node(names[1])
        jt.tree = bad
        with pytest.raises(WorkloadError):
            jt.validate()

    def test_min_fill_default_order(self, cyclic_supply_chain):
        jt = build_junction_tree(_relations(cyclic_supply_chain), SUM_PRODUCT)
        assert nx.is_chordal(jt.triangulation.chordal_graph)
        jt.validate()
