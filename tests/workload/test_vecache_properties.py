"""Property-based VE-cache tests: Definition 5 on random schemas."""

from functools import reduce

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import marginalize, product_join, restrict
from repro.data import FunctionalRelation, var
from repro.semiring import SUM_PRODUCT
from repro.workload import build_ve_cache, satisfies_workload_invariant


@st.composite
def random_view(draw):
    """2-4 sparse relations over ≤5 shared variables."""
    n_vars = draw(st.integers(2, 5))
    sizes = [draw(st.integers(2, 3)) for _ in range(n_vars)]
    variables = [var(f"x{i}", sizes[i]) for i in range(n_vars)]
    n_tables = draw(st.integers(2, 4))
    relations = []
    for t in range(n_tables):
        arity = draw(st.integers(1, min(3, n_vars)))
        chosen = sorted(
            draw(
                st.lists(
                    st.integers(0, n_vars - 1),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
        )
        scope = [variables[i] for i in chosen]
        total = 1
        for v in scope:
            total *= v.size
        n_rows = draw(st.integers(1, total))
        flat = draw(
            st.lists(
                st.integers(0, total - 1),
                min_size=n_rows,
                max_size=n_rows,
                unique=True,
            )
        )
        columns = {}
        remaining = np.asarray(flat, dtype=np.int64)
        divisor = total
        for v in scope:
            divisor //= v.size
            columns[v.name] = (remaining // divisor) % v.size
        measure = np.asarray(
            draw(
                st.lists(
                    st.floats(0.05, 5.0, allow_nan=False),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            )
        )
        relations.append(
            FunctionalRelation(scope, columns, measure, name=f"t{t}")
        )
    return relations


@given(random_view())
@settings(max_examples=30, deadline=None)
def test_cache_satisfies_definition5(relations):
    cache = build_ve_cache(relations, SUM_PRODUCT)
    assert satisfies_workload_invariant(
        cache.tables, relations, SUM_PRODUCT
    )


@given(random_view(), st.integers(0, 10))
@settings(max_examples=25, deadline=None)
def test_evidence_absorption_matches_oracle(relations, seed):
    cache = build_ve_cache(relations, SUM_PRODUCT)
    rng = np.random.default_rng(seed)
    all_vars = sorted({v for r in relations for v in r.var_names})
    if len(all_vars) < 2:
        return
    ev_var, q_var = rng.choice(all_vars, size=2, replace=False)
    ev_size = next(
        r.variables[ev_var].size for r in relations
        if ev_var in r.variables
    )
    evidence = {str(ev_var): int(rng.integers(ev_size))}
    conditioned = cache.absorb_evidence(evidence)
    got = conditioned.answer(str(q_var))

    joint = reduce(
        lambda a, b: product_join(a, b, SUM_PRODUCT), relations
    )
    expected = marginalize(
        restrict(joint, evidence), [str(q_var)], SUM_PRODUCT
    )
    assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


@given(random_view())
@settings(max_examples=20, deadline=None)
def test_cached_totals_agree_across_tables(relations):
    """Every calibrated table carries the same total mass (the view's
    total) — a cheap consistency invariant of calibration."""
    cache = build_ve_cache(relations, SUM_PRODUCT)
    joint = reduce(
        lambda a, b: product_join(a, b, SUM_PRODUCT), relations
    )
    expected_total = float(joint.measure.sum())
    for table in cache.tables.values():
        assert np.isclose(
            float(table.measure.sum()), expected_total, rtol=1e-9
        )
