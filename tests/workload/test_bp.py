"""Belief propagation tests: Figure 11's program, Theorem 6's
invariant, and the Figure 12 cyclic double-counting failure."""

import pytest

from repro.errors import AcyclicityError, SemiringError, WorkloadError
from repro.semiring import BOOLEAN, MIN_SUM, SUM_PRODUCT
from repro.workload import (
    belief_propagation,
    bp_program_literal,
    satisfies_workload_invariant,
)

FIGURE11_ORDER = [
    "transporters", "ctdeals", "warehouses", "location", "contracts",
]


def _relations(sc, order=None):
    names = order or sc.tables
    return {t: sc.catalog.relation(t) for t in names}


class TestFigure11Program:
    def test_exact_program(self, tiny_supply_chain):
        """With order t, ct, w, l, c (root c) the semijoin program is
        exactly Figure 11's eight steps."""
        rels = _relations(tiny_supply_chain, FIGURE11_ORDER)
        result = belief_propagation(rels, SUM_PRODUCT, root="contracts")
        listing = result.program_listing().splitlines()
        assert listing == [
            "1. ctdeals ⋉* transporters",
            "2. warehouses ⋉* ctdeals",
            "3. location ⋉* warehouses",
            "4. contracts ⋉* location",
            "5. location ⋉ contracts",
            "6. warehouses ⋉ location",
            "7. ctdeals ⋉ warehouses",
            "8. transporters ⋉ ctdeals",
        ]

    def test_forward_steps_before_backward(self, tiny_supply_chain):
        rels = _relations(tiny_supply_chain, FIGURE11_ORDER)
        result = belief_propagation(rels, SUM_PRODUCT, root="contracts")
        kinds = [s.kind for s in result.program]
        assert kinds == ["product"] * 4 + ["update"] * 4


class TestInvariant:
    def test_tree_bp_satisfies_definition5(self, tiny_supply_chain):
        sc = tiny_supply_chain
        rels = _relations(sc)
        result = belief_propagation(rels, SUM_PRODUCT)
        assert satisfies_workload_invariant(
            result.tables, list(rels.values()), SUM_PRODUCT
        )

    def test_min_sum_bp(self, tiny_supply_chain):
        sc = tiny_supply_chain
        rels = _relations(sc)
        result = belief_propagation(rels, MIN_SUM)
        assert satisfies_workload_invariant(
            result.tables, list(rels.values()), MIN_SUM
        )

    def test_literal_program_on_chain_schema(self, tiny_supply_chain):
        """Algorithm 4 verbatim coincides with tree BP on the path-
        shaped supply-chain schema."""
        sc = tiny_supply_chain
        rels = _relations(sc, FIGURE11_ORDER)
        result = bp_program_literal(rels, SUM_PRODUCT, FIGURE11_ORDER)
        assert satisfies_workload_invariant(
            result.tables, list(rels.values()), SUM_PRODUCT
        )

    def test_scopes_preserved(self, tiny_supply_chain):
        sc = tiny_supply_chain
        rels = _relations(sc)
        result = belief_propagation(rels, SUM_PRODUCT)
        for name, updated in result.tables.items():
            assert set(updated.var_names) == set(rels[name].var_names)


class TestCyclicFailure:
    def test_tree_bp_refuses_cyclic_schema(self, cyclic_supply_chain):
        rels = _relations(cyclic_supply_chain)
        with pytest.raises(AcyclicityError):
            belief_propagation(rels, SUM_PRODUCT)

    def test_literal_bp_double_counts_on_cycle(self, cyclic_supply_chain):
        """Figure 12's walk-through: on the stdeals schema the literal
        program re-propagates transporters' measure and the invariant
        fails."""
        sc = cyclic_supply_chain
        order = [
            "transporters", "stdeals", "ctdeals", "warehouses",
            "location", "contracts",
        ]
        rels = _relations(sc, order)
        result = bp_program_literal(rels, SUM_PRODUCT, order)
        assert not satisfies_workload_invariant(
            result.tables, list(rels.values()), SUM_PRODUCT
        )

    def test_boolean_tree_bp_uses_product_fallback(self, tiny_supply_chain):
        """The boolean semiring has no division, but its idempotent
        multiplication lets the backward pass reuse the product
        semijoin — and on the acyclic schema the invariant holds."""
        sc = tiny_supply_chain
        rels = {
            t: r.with_measure(r.measure > r.measure.mean())
            for t, r in _relations(sc).items()
        }
        result = belief_propagation(rels, BOOLEAN)
        assert satisfies_workload_invariant(
            result.tables, list(rels.values()), BOOLEAN
        )

    def test_update_semijoin_is_calibration_fixpoint(self, tiny_supply_chain):
        """A calibrated table absorbing its calibrated neighbor via the
        *update* semijoin (which divides) is unchanged — the backward
        operator, unlike the forward one, is a fixpoint at
        calibration."""
        from repro.algebra import update_semijoin

        sc = tiny_supply_chain
        rels = _relations(sc)
        result = belief_propagation(rels, SUM_PRODUCT)
        ct = result.tables["ctdeals"]
        w = result.tables["warehouses"]
        again = update_semijoin(ct, w, SUM_PRODUCT)
        assert again.equals(ct, SUM_PRODUCT, ignore_zero_rows=True)


class TestValidation:
    def test_unknown_root(self, tiny_supply_chain):
        rels = _relations(tiny_supply_chain)
        with pytest.raises(WorkloadError):
            belief_propagation(rels, SUM_PRODUCT, root="ghost")

    def test_literal_order_must_be_permutation(self, tiny_supply_chain):
        rels = _relations(tiny_supply_chain)
        with pytest.raises(WorkloadError):
            bp_program_literal(rels, SUM_PRODUCT, ["contracts"])

    def test_unique_names_required(self, tiny_supply_chain):
        rel = tiny_supply_chain.catalog.relation("contracts")
        anonymous = rel.with_name(None)
        other = tiny_supply_chain.catalog.relation("location")
        # List input with a None name gets a positional name; fine.
        result = belief_propagation([anonymous.with_name("c"), other],
                                    SUM_PRODUCT)
        assert set(result.tables) == {"c", "location"}

    def test_counting_semiring_backward_pass_unsupported(
        self, tiny_supply_chain
    ):
        from repro.semiring import COUNTING

        rels = {
            t: r.with_measure(r.measure.astype("int64"))
            for t, r in _relations(tiny_supply_chain).items()
        }
        with pytest.raises(SemiringError):
            belief_propagation(rels, COUNTING)
