"""Unit tests for CPDs."""

import numpy as np
import pytest

from repro.bayes import CPD
from repro.data import var
from repro.errors import SchemaError


class TestValidation:
    def test_rows_must_sum_to_one(self):
        a = var("a", 2)
        with pytest.raises(SchemaError):
            CPD(a, (), np.array([0.5, 0.6]))

    def test_negative_rejected(self):
        a = var("a", 2)
        with pytest.raises(SchemaError):
            CPD(a, (), np.array([-0.1, 1.1]))

    def test_shape_must_match_scope(self):
        a, b = var("a", 2), var("b", 3)
        with pytest.raises(SchemaError):
            CPD(a, (b,), np.full((2, 2), 0.5))

    def test_valid_conditional(self):
        a, b = var("a", 2), var("b", 3)
        table = np.full((3, 2), 0.5)
        cpd = CPD(a, (b,), table)
        assert cpd.scope == (b, a)


class TestConstruction:
    def test_from_counts_with_prior(self):
        a = var("a", 2)
        cpd = CPD.from_counts(a, (), np.array([3.0, 1.0]), prior=1.0)
        assert cpd.table.tolist() == [4 / 6, 2 / 6]

    def test_from_counts_conditional(self):
        a, b = var("a", 2), var("b", 2)
        counts = np.array([[8.0, 2.0], [0.0, 10.0]])
        cpd = CPD.from_counts(a, (b,), counts, prior=0.0)
        assert cpd.table[0].tolist() == [0.8, 0.2]
        assert cpd.table[1].tolist() == [0.0, 1.0]

    def test_random_is_normalized(self, rng):
        a, b = var("a", 3), var("b", 4)
        cpd = CPD.random(a, (b,), rng)
        assert np.allclose(cpd.table.sum(axis=-1), 1.0)

    def test_random_deterministic(self):
        a = var("a", 3)
        c1 = CPD.random(a, (), np.random.default_rng(1))
        c2 = CPD.random(a, (), np.random.default_rng(1))
        assert np.array_equal(c1.table, c2.table)


class TestToRelation:
    def test_complete_relation(self):
        a, b = var("a", 2), var("b", 3)
        cpd = CPD.random(a, (b,), np.random.default_rng(0))
        rel = cpd.to_relation()
        assert rel.is_complete()
        assert rel.var_names == ("b", "a")
        assert rel.measure_name == "p"
        assert rel.name == "cpd_a"

    def test_values_match_table(self):
        a, b = var("a", 2), var("b", 2)
        table = np.array([[0.9, 0.1], [0.3, 0.7]])
        rel = CPD(a, (b,), table).to_relation()
        assert rel.value_at({"b": 1, "a": 0}) == pytest.approx(0.3)
