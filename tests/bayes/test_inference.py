"""Inference tests: MPF-backed engines against the brute-force oracle."""

import numpy as np
import pytest

from repro.bayes import (
    BruteForceInference,
    MPFInference,
    chain_network,
    figure2_network,
    naive_bayes_network,
    random_network,
    sprinkler_network,
)
from repro.errors import QueryError
from repro.optimizer import CSPlusNonlinear, VariableElimination
from repro.semiring import SUM_PRODUCT


class TestPaperExample:
    def test_section4_query(self):
        """select C, SUM(p) from joint where A=0 group by C computes
        Pr(C | A = 0) — the inference MPF query of Section 4."""
        bn = figure2_network()
        mpf = MPFInference(bn)
        got = mpf.query("C", evidence={"A": 0})
        # Pr(C | A=0) is just the A=0 row of C's CPT.
        assert got.value_at({"C": 0}) == pytest.approx(0.9)
        assert got.value_at({"C": 1}) == pytest.approx(0.1)

    def test_unnormalized_measure(self):
        bn = figure2_network()
        mpf = MPFInference(bn)
        raw = mpf.query("C", evidence={"A": 0}, normalized=False)
        # Unnormalized: Pr(C, A=0) sums to Pr(A=0) = 0.6.
        assert raw.measure.sum() == pytest.approx(0.6)


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "maker",
        [figure2_network, sprinkler_network,
         lambda: chain_network(length=5),
         lambda: naive_bayes_network(n_features=4)],
        ids=["figure2", "sprinkler", "chain", "naive-bayes"],
    )
    def test_marginals(self, maker):
        bn = maker()
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        for v in bn.variable_names:
            assert mpf.query(v).equals(oracle.query(v), SUM_PRODUCT)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_networks_with_evidence(self, seed):
        bn = random_network(n_variables=6, seed=seed)
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        rng = np.random.default_rng(seed)
        names = bn.variable_names
        ev_var = names[int(rng.integers(len(names)))]
        q_var = next(n for n in names if n != ev_var)
        evidence = {ev_var: 0}
        got = mpf.query(q_var, evidence=evidence)
        expected = oracle.query(q_var, evidence=evidence)
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_joint_query_over_two_variables(self):
        bn = sprinkler_network()
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        got = mpf.query(["sprinkler", "rain"], evidence={"wet_grass": 1})
        expected = oracle.query(["sprinkler", "rain"], evidence={"wet_grass": 1})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_alternative_optimizers_agree(self):
        bn = chain_network(length=6)
        oracle = BruteForceInference(bn).query("X2")
        for optimizer in (
            CSPlusNonlinear(),
            VariableElimination("width"),
            VariableElimination("degree", extended=True),
        ):
            mpf = MPFInference(bn, optimizer=optimizer)
            assert mpf.query("X2").equals(oracle, SUM_PRODUCT)

    def test_map_query(self):
        bn = sprinkler_network()
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        got = mpf.map_query(["rain"], evidence={"wet_grass": 1})
        expected = oracle.map_query(["rain"], evidence={"wet_grass": 1})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


class TestCachedInference:
    def test_cache_answers_all_marginals(self):
        bn = chain_network(length=7)
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        cache = mpf.build_cache()
        for v in bn.variable_names:
            got = mpf.query_cached(cache, v)
            assert got.equals(oracle.query(v), SUM_PRODUCT,
                              ignore_zero_rows=True)

    def test_cache_with_evidence(self):
        bn = chain_network(length=6)
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        cache = mpf.build_cache()
        got = mpf.query_cached(cache, "X1", evidence={"X5": 2})
        expected = oracle.query("X1", evidence={"X5": 2})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_cache_on_loopy_network(self):
        """figure2's moral graph has a 4-cycle + chord; VE-cache must
        triangulate correctly."""
        bn = figure2_network()
        mpf = MPFInference(bn)
        oracle = BruteForceInference(bn)
        cache = mpf.build_cache()
        for v in "ABCD":
            got = mpf.query_cached(cache, v)
            assert got.equals(oracle.query(v), SUM_PRODUCT,
                              ignore_zero_rows=True)


class TestNormalization:
    def test_zero_mass_evidence_raises(self):
        bn = sprinkler_network()
        mpf = MPFInference(bn)
        # sprinkler=on & cloudy=yes has tiny but nonzero mass; build an
        # impossible combination instead: wet_grass wet with sprinkler
        # off and rain no has probability 0.
        with pytest.raises(QueryError):
            mpf.query(
                "cloudy",
                evidence={"sprinkler": 0, "rain": 0, "wet_grass": 1},
            )

    def test_posterior_sums_to_one(self):
        bn = sprinkler_network()
        got = MPFInference(bn).query("rain", evidence={"wet_grass": 1})
        assert got.measure.sum() == pytest.approx(1.0)


class TestAsiaNetwork:
    """The Lauritzen-Spiegelhalter chest clinic: loopy moral graph,
    deterministic OR node, published reference posteriors."""

    @pytest.fixture(scope="class")
    def asia(self):
        from repro.bayes import asia_network

        return asia_network()

    def test_prior_marginals(self, asia):
        mpf = MPFInference(asia)
        # Pr(tub=yes) = 0.99*0.01 + 0.01*0.05 = 0.0104
        tub = mpf.query("tub")
        assert float(tub.value_at({"tub": 1})) == pytest.approx(0.0104)
        # Pr(lung=yes) = 0.5*0.01 + 0.5*0.1 = 0.055
        lung = mpf.query("lung")
        assert float(lung.value_at({"lung": 1})) == pytest.approx(0.055)

    def test_matches_brute_force_everywhere(self, asia):
        mpf = MPFInference(asia)
        oracle = BruteForceInference(asia)
        for v in asia.variable_names:
            assert mpf.query(v).equals(oracle.query(v), SUM_PRODUCT)

    def test_diagnostic_evidence(self, asia):
        """Positive x-ray and dyspnoea raise Pr(lung cancer)."""
        mpf = MPFInference(asia)
        prior = float(mpf.query("lung").value_at({"lung": 1}))
        posterior = float(
            mpf.query("lung", evidence={"xray": 1, "dysp": 1})
            .value_at({"lung": 1})
        )
        assert posterior > 5 * prior
        oracle = BruteForceInference(asia)
        expected = oracle.query("lung", evidence={"xray": 1, "dysp": 1})
        got = mpf.query("lung", evidence={"xray": 1, "dysp": 1})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_deterministic_node_zeros(self, asia):
        """either = tub OR lung exactly: impossible combinations carry
        zero mass in the joint."""
        joint = asia.joint()
        from repro.algebra import restrict

        impossible = restrict(
            joint, {"tub": 1, "lung": 0, "either": 0}
        )
        assert float(impossible.measure.sum()) == 0.0

    def test_cache_on_asia(self, asia):
        mpf = MPFInference(asia)
        oracle = BruteForceInference(asia)
        cache = mpf.build_cache(heuristic="width")
        for v in ("tub", "lung", "bronc", "dysp"):
            got = mpf.query_cached(cache, v)
            assert got.equals(oracle.query(v), SUM_PRODUCT,
                              ignore_zero_rows=True)

    def test_cache_with_evidence_on_asia(self, asia):
        mpf = MPFInference(asia)
        oracle = BruteForceInference(asia)
        cache = mpf.build_cache(heuristic="width")
        got = mpf.query_cached(cache, "bronc", evidence={"dysp": 1})
        expected = oracle.query("bronc", evidence={"dysp": 1})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


class TestLogSpaceInference:
    def test_matches_linear_space(self):
        bn = sprinkler_network()
        linear = MPFInference(bn)
        logspace = MPFInference(bn, log_space=True)
        for v in bn.variable_names:
            assert logspace.query(v).equals(linear.query(v), SUM_PRODUCT)

    def test_evidence_in_log_space(self):
        bn = sprinkler_network()
        logspace = MPFInference(bn, log_space=True)
        oracle = BruteForceInference(bn)
        got = logspace.query("rain", evidence={"wet_grass": 1})
        expected = oracle.query("rain", evidence={"wet_grass": 1})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_map_query_in_log_space(self):
        bn = sprinkler_network()
        logspace = MPFInference(bn, log_space=True)
        oracle = BruteForceInference(bn)
        got = logspace.map_query(["rain"], evidence={"wet_grass": 1})
        expected = oracle.map_query(["rain"], evidence={"wet_grass": 1})
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_deep_chain_stays_finite(self):
        """A 40-node chain of smallish probabilities: linear-space
        unnormalized mass underflows toward 0, log space is exact."""
        bn = chain_network(length=40, domain_size=2, seed=2)
        logspace = MPFInference(bn, log_space=True)
        posterior = logspace.query("X20")
        assert np.isfinite(posterior.measure).all()
        assert posterior.measure.sum() == pytest.approx(1.0)

    def test_cached_inference_in_log_space(self):
        bn = chain_network(length=6)
        logspace = MPFInference(bn, log_space=True)
        oracle = BruteForceInference(bn)
        cache = logspace.build_cache()
        got = logspace.query_cached(cache, "X2")
        assert got.equals(oracle.query("X2"), SUM_PRODUCT,
                          ignore_zero_rows=True)
