"""Tests for MPF-based parameter estimation (Section 4)."""

import numpy as np
import pytest

from repro.bayes import (
    BruteForceInference,
    MPFInference,
    counts,
    estimate_cpd,
    estimate_network,
    samples_to_relation,
    sprinkler_network,
)
from repro.data import FunctionalRelation, var
from repro.errors import SchemaError


@pytest.fixture
def sprinkler_samples():
    bn = sprinkler_network()
    samples = bn.sample(40_000, np.random.default_rng(11))
    variables = [bn.variable(n) for n in bn.variable_names]
    return bn, samples, variables


class TestSamplesToRelation:
    def test_multiplicities_sum_to_n(self, sprinkler_samples):
        _, samples, variables = sprinkler_samples
        rel = samples_to_relation(samples, variables)
        assert rel.measure.sum() == 40_000
        assert rel.measure.dtype == np.int64
        # Duplicates merged: far fewer rows than samples.
        assert rel.ntuples <= 16

    def test_mismatched_lengths_rejected(self):
        a, b = var("a", 2), var("b", 2)
        with pytest.raises(SchemaError):
            samples_to_relation(
                {"a": np.zeros(3, dtype=np.int64),
                 "b": np.zeros(4, dtype=np.int64)},
                [a, b],
            )


class TestCounts:
    def test_marginal_counts_match_numpy(self, sprinkler_samples):
        _, samples, variables = sprinkler_samples
        rel = samples_to_relation(samples, variables)
        rain_counts = counts(rel, ["rain"])
        for code in (0, 1):
            expected = int((samples["rain"] == code).sum())
            assert rain_counts.value_at({"rain": code}) == expected

    def test_counts_over_join_dependency(self):
        """Data split across two tables sharing a key: the counting
        product join reconstructs joint multiplicities."""
        key, x, y = var("k", 3), var("x", 2), var("y", 2)
        left = FunctionalRelation.from_rows(
            [key, x],
            [(0, 0, 2), (1, 1, 3), (2, 0, 1)],
            name="left",
            dtype=np.int64,
        )
        right = FunctionalRelation.from_rows(
            [key, y],
            [(0, 1, 1), (1, 0, 2), (2, 1, 4)],
            name="right",
            dtype=np.int64,
        )
        joint_counts = counts([left, right], ["x", "y"])
        # k=0: 2*1 ->(x0,y1)=2 ; k=1: 3*2 ->(x1,y0)=6 ; k=2: 1*4 ->(x0,y1)+=4
        assert joint_counts.value_at({"x": 0, "y": 1}) == 6
        assert joint_counts.value_at({"x": 1, "y": 0}) == 6


class TestEstimation:
    def test_cpd_recovery(self, sprinkler_samples):
        bn, samples, variables = sprinkler_samples
        rel = samples_to_relation(samples, variables)
        truth = bn.cpd("rain")
        estimated = estimate_cpd(
            rel, truth.variable, truth.parents, prior=1.0
        )
        assert np.allclose(estimated.table, truth.table, atol=0.02)

    def test_network_recovery_end_to_end(self, sprinkler_samples):
        bn, samples, variables = sprinkler_samples
        rel = samples_to_relation(samples, variables)
        structure = [
            (bn.variable(n), tuple(bn.variable(p) for p in bn.parents(n)))
            for n in bn.variable_names
        ]
        estimated = estimate_network(rel, structure, prior=1.0)
        true_answer = BruteForceInference(bn).query(
            "rain", evidence={"wet_grass": 1}
        )
        est_answer = MPFInference(estimated).query(
            "rain", evidence={"wet_grass": 1}
        )
        assert np.allclose(
            np.sort(est_answer.measure),
            np.sort(true_answer.measure),
            atol=0.03,
        )

    def test_prior_smooths_unseen_contexts(self):
        """A parent context never observed still yields a valid
        (uniform) conditional row."""
        a, b = var("a", 2), var("b", 3)
        rel = FunctionalRelation.from_rows(
            [a, b],
            [(0, 0, 5), (0, 1, 5)],  # a=1 never observed
            name="data",
            dtype=np.int64,
        )
        cpd = estimate_cpd(rel, b, (a,), prior=1.0)
        assert np.allclose(cpd.table[1], [1 / 3, 1 / 3, 1 / 3])
        assert np.allclose(cpd.table.sum(axis=-1), 1.0)

    def test_zero_prior_pure_mle(self):
        a = var("a", 2)
        rel = FunctionalRelation.from_rows(
            [a], [(0, 3), (1, 1)], name="data", dtype=np.int64
        )
        cpd = estimate_cpd(rel, a, (), prior=0.0)
        assert np.allclose(cpd.table, [0.75, 0.25])
