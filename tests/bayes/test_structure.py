"""Structure-learning tests: BIC over MPF counts + hill climbing."""

import numpy as np
import pytest

from repro.bayes import (
    BruteForceInference,
    MPFInference,
    bic_score,
    chain_network,
    greedy_hill_climb,
    samples_to_relation,
    sprinkler_network,
)
from repro.errors import SchemaError


def _data(bn, n, seed=0):
    samples = bn.sample(n, np.random.default_rng(seed))
    variables = [bn.variable(name) for name in bn.variable_names]
    return samples_to_relation(samples, variables), variables


class TestBIC:
    def test_true_structure_beats_empty(self):
        bn = sprinkler_network()
        data, variables = _data(bn, 20_000)
        true_structure = [
            (bn.variable(n), tuple(bn.variable(p) for p in bn.parents(n)))
            for n in bn.variable_names
        ]
        empty_structure = [(v, ()) for v in variables]
        assert bic_score(data, true_structure) > bic_score(
            data, empty_structure
        )

    def test_penalty_discourages_spurious_parents(self):
        """With little data, an extra (true-independence) parent must
        lower BIC."""
        bn = chain_network(length=3, domain_size=2, seed=1)
        data, variables = _data(bn, 300)
        x0, x1, x2 = variables
        lean = [(x0, ()), (x1, (x0,)), (x2, (x1,))]
        bloated = [(x0, ()), (x1, (x0,)), (x2, (x0, x1))]
        assert bic_score(data, lean) >= bic_score(data, bloated)

    def test_score_is_additive_over_families(self):
        from repro.bayes.structure import family_bic

        bn = sprinkler_network()
        data, variables = _data(bn, 5_000)
        structure = [(v, ()) for v in variables]
        total = bic_score(data, structure)
        parts = sum(
            family_bic(data, v, (), float(data.measure.sum()))
            for v in variables
        )
        assert total == pytest.approx(parts)


class TestHillClimb:
    def test_scores_at_least_the_true_structure(self):
        """Greedy search is only locally optimal, so we do not demand
        skeleton recovery — but the structure it returns must score no
        worse than the generating chain (else the search is broken)."""
        bn = chain_network(length=4, domain_size=2, seed=3)
        data, variables = _data(bn, 30_000, seed=3)
        result = greedy_hill_climb(data, variables, max_parents=2)
        true_structure = [
            (bn.variable(n), tuple(bn.variable(p) for p in bn.parents(n)))
            for n in bn.variable_names
        ]
        assert result.score >= bic_score(data, true_structure) - 1e-6
        # And it found *some* dependence (the chain is not independent).
        assert any(parents for _, parents in result.structure)

    def test_recovers_strong_chain_skeleton(self):
        """With near-deterministic links the chain adjacencies are
        unambiguous and greedy search must find them."""
        from repro.bayes import CPD, BayesianNetwork
        from repro.data import var

        variables = [var(f"X{i}", 2) for i in range(3)]
        strong = np.array([[0.95, 0.05], [0.05, 0.95]])
        bn = BayesianNetwork(
            [
                CPD(variables[0], (), np.array([0.5, 0.5])),
                CPD(variables[1], (variables[0],), strong),
                CPD(variables[2], (variables[1],), strong),
            ]
        )
        data, _ = _data(bn, 30_000, seed=11)
        result = greedy_hill_climb(data, variables, max_parents=2)
        edges = {
            frozenset((v.name, p.name))
            for v, parents in result.structure
            for p in parents
        }
        assert frozenset(("X0", "X1")) in edges
        assert frozenset(("X1", "X2")) in edges

    def test_result_network_is_valid_and_close(self):
        bn = sprinkler_network()
        data, variables = _data(bn, 40_000, seed=5)
        result = greedy_hill_climb(data, variables, max_parents=2)
        learned = MPFInference(result.network)
        truth = BruteForceInference(bn)
        got = learned.query("wet_grass")
        expected = truth.query("wet_grass")
        assert np.allclose(
            np.sort(got.measure), np.sort(expected.measure), atol=0.03
        )

    def test_score_improves_monotonically(self):
        bn = chain_network(length=4, domain_size=2, seed=7)
        data, variables = _data(bn, 10_000, seed=7)
        result = greedy_hill_climb(data, variables)
        scores = [s for _, s in result.trace]
        assert scores == sorted(scores)
        assert result.iterations == len(result.trace)

    def test_respects_max_parents(self):
        bn = sprinkler_network()
        data, variables = _data(bn, 10_000)
        result = greedy_hill_climb(data, variables, max_parents=1)
        for _, parents in result.structure:
            assert len(parents) <= 1

    def test_acyclic_by_construction(self):
        import networkx as nx

        bn = sprinkler_network()
        data, variables = _data(bn, 10_000)
        result = greedy_hill_climb(data, variables, max_parents=2)
        assert nx.is_directed_acyclic_graph(result.network.graph)

    def test_missing_variable_rejected(self):
        bn = sprinkler_network()
        data, variables = _data(bn, 1_000)
        from repro.data import var

        with pytest.raises(SchemaError):
            greedy_hill_climb(data, variables + [var("ghost", 2)])

    def test_zero_iterations_on_independent_noise(self):
        """Independent uniform variables: the empty graph is already a
        local optimum (any edge adds penalty without likelihood)."""
        rng = np.random.default_rng(0)
        from repro.data import var

        a, b = var("a", 2), var("b", 2)
        samples = {
            "a": rng.integers(0, 2, size=20_000),
            "b": rng.integers(0, 2, size=20_000),
        }
        data = samples_to_relation(samples, [a, b])
        result = greedy_hill_climb(data, [a, b])
        assert result.iterations == 0
        assert all(not parents for _, parents in result.structure)
