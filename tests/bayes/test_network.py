"""Unit tests for BayesianNetwork."""

import numpy as np
import pytest

from repro.bayes import CPD, BayesianNetwork, figure2_network, sprinkler_network
from repro.data import var
from repro.errors import SchemaError


class TestStructure:
    def test_figure2_edges(self):
        bn = figure2_network()
        assert set(bn.graph.edges) == {
            ("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"),
        }

    def test_topological_order(self):
        bn = figure2_network()
        order = bn.variable_names
        assert order.index("A") < order.index("B")
        assert order.index("B") < order.index("D")
        assert order.index("C") < order.index("D")

    def test_parents(self):
        bn = figure2_network()
        assert bn.parents("D") == ("B", "C")
        assert bn.parents("A") == ()

    def test_cycle_rejected(self):
        a, b = var("A", 2), var("B", 2)
        with pytest.raises(SchemaError):
            BayesianNetwork(
                [
                    CPD(a, (b,), np.full((2, 2), 0.5)),
                    CPD(b, (a,), np.full((2, 2), 0.5)),
                ]
            )

    def test_missing_parent_cpd_rejected(self):
        a, b = var("A", 2), var("B", 2)
        with pytest.raises(SchemaError):
            BayesianNetwork([CPD(a, (b,), np.full((2, 2), 0.5))])

    def test_duplicate_cpd_rejected(self):
        a = var("A", 2)
        cpd = CPD(a, (), np.array([0.5, 0.5]))
        with pytest.raises(SchemaError):
            BayesianNetwork([cpd, cpd])

    def test_conflicting_domain_sizes(self):
        a2, a3 = var("A", 2), var("A", 3)
        b = var("B", 2)
        with pytest.raises(SchemaError):
            BayesianNetwork(
                [
                    CPD(a2, (), np.array([0.5, 0.5])),
                    CPD(b, (a3,), np.full((3, 2), 0.5)),
                ]
            )


class TestJoint:
    def test_joint_sums_to_one(self):
        bn = figure2_network()
        joint = bn.joint()
        assert joint.ntuples == 16
        assert joint.measure.sum() == pytest.approx(1.0)

    def test_factorization(self):
        """Pr(A,B,C,D) = Pr(A) Pr(B|A) Pr(C|A) Pr(D|B,C) pointwise."""
        bn = figure2_network()
        joint = bn.joint()
        pa = bn.cpd("A").table
        pb = bn.cpd("B").table
        pc = bn.cpd("C").table
        pd = bn.cpd("D").table
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    for d in range(2):
                        expected = pa[a] * pb[a, b] * pc[a, c] * pd[b, c, d]
                        got = joint.value_at({"A": a, "B": b, "C": c, "D": d})
                        assert got == pytest.approx(expected)

    def test_moral_graph(self):
        bn = figure2_network()
        moral = bn.moral_graph()
        # Moralization marries D's parents B and C.
        assert moral.has_edge("B", "C")
        assert moral.has_edge("A", "B")


class TestSampling:
    def test_marginal_frequencies_converge(self):
        bn = sprinkler_network()
        samples = bn.sample(20_000, np.random.default_rng(0))
        freq_rain = samples["rain"].mean()
        from repro.bayes import BruteForceInference

        expected = BruteForceInference(bn).query("rain").value_at({"rain": 1})
        assert freq_rain == pytest.approx(float(expected), abs=0.02)

    def test_sample_shapes(self):
        bn = figure2_network()
        samples = bn.sample(100, np.random.default_rng(1))
        assert set(samples) == {"A", "B", "C", "D"}
        for col in samples.values():
            assert len(col) == 100
            assert col.min() >= 0 and col.max() <= 1


class TestParameterEstimationRoundTrip:
    def test_counts_recover_cpds(self):
        """Section 4: counts from data re-estimate the local functions.

        Sample from the sprinkler network, histogram parent-child
        counts, rebuild CPDs with from_counts, and check the recovered
        tables approximate the originals.
        """
        bn = sprinkler_network()
        n = 60_000
        samples = bn.sample(n, np.random.default_rng(2))

        cpd = bn.cpd("rain")
        counts = np.zeros((2, 2))
        np.add.at(counts, (samples["cloudy"], samples["rain"]), 1)
        rebuilt = CPD.from_counts(
            cpd.variable, cpd.parents, counts, prior=1.0
        )
        assert np.allclose(rebuilt.table, cpd.table, atol=0.02)
