"""End-to-end tests of the Database facade."""

import pytest

from repro import Database
from repro.errors import ParseError, QueryError
from repro.semiring import SUM_PRODUCT

CREATE_INVEST = """
create mpfview invest as
  (select pid, sid, wid, cid, tid,
          measure = (* contracts.price, warehouses.w_factor,
                       transporters.t_overhead, location.quantity,
                       ctdeals.ct_discount)
   from contracts, warehouses, transporters, location, ctdeals
   where contracts.pid = location.pid and
         location.wid = warehouses.wid and
         warehouses.cid = ctdeals.cid and
         ctdeals.tid = transporters.tid)
"""


@pytest.fixture
def db(tiny_supply_chain):
    database = Database()
    for t in tiny_supply_chain.tables:
        database.register(tiny_supply_chain.catalog.relation(t))
    database.execute(CREATE_INVEST)
    return database


class TestDDL:
    def test_view_created(self, db):
        report = db.execute("select wid, sum(inv) from invest group by wid")
        assert report.result.var_names == ("wid",)

    def test_duplicate_view_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute(CREATE_INVEST)

    def test_view_over_unknown_table(self, db):
        with pytest.raises(QueryError):
            db.create_view("v2", ("contracts", "ghost"))

    def test_measure_ref_must_name_from_table(self, db):
        bad = (
            "create mpfview v2 as (select pid, "
            "measure = (* elsewhere.f) from contracts)"
        )
        with pytest.raises(QueryError):
            db.execute(bad)

    def test_join_predicates_must_be_natural(self, db):
        bad = (
            "create mpfview v2 as (select pid, wid, "
            "measure = (* contracts.price, location.quantity) "
            "from contracts, location where contracts.pid = location.wid)"
        )
        with pytest.raises(QueryError):
            db.execute(bad)


class TestQueries:
    def test_all_strategies_agree(self, db):
        sql = "select wid, sum(inv) from invest group by wid"
        reference = db.execute(sql, strategy="cs").result
        for strategy in ("cs+", "cs+nonlinear", "ve", "ve+", "auto"):
            got = db.execute(sql, strategy=strategy).result
            assert got.equals(reference, SUM_PRODUCT), strategy

    def test_strategies_match_oracle(self, db, tiny_supply_chain):
        from functools import reduce

        from repro.algebra import marginalize, product_join

        cat = tiny_supply_chain.catalog
        joint = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            [cat.relation(t) for t in tiny_supply_chain.tables],
        )
        expected = marginalize(joint, ["cid"], SUM_PRODUCT)
        got = db.execute("select cid, sum(inv) from invest group by cid")
        assert got.result.equals(expected, SUM_PRODUCT)

    def test_constrained_domain_sql(self, db, tiny_supply_chain):
        from functools import reduce

        from repro.algebra import marginalize, product_join, restrict

        cat = tiny_supply_chain.catalog
        joint = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            [cat.relation(t) for t in tiny_supply_chain.tables],
        )
        expected = marginalize(
            restrict(joint, {"tid": 1}), ["cid"], SUM_PRODUCT
        )
        got = db.execute(
            "select cid, sum(inv) from invest where tid = 1 group by cid"
        )
        assert got.result.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_min_aggregate_selects_min_product(self, db):
        report = db.execute("select pid, min(inv) from invest group by pid")
        assert report.semiring.name == "min_product"

    def test_having_filters(self, db):
        full = db.execute("select wid, sum(inv) from invest group by wid")
        threshold = float(sorted(full.result.measure)[len(full.result.measure) // 2])
        filtered = db.execute(
            f"select wid, sum(inv) from invest group by wid having f < {threshold}"
        )
        assert 0 < filtered.result.ntuples < full.result.ntuples

    def test_incompatible_aggregate(self, db):
        with pytest.raises(QueryError):
            db.execute("select wid, or(inv) from invest group by wid")

    def test_unknown_view(self, db):
        with pytest.raises(QueryError):
            db.execute("select wid, sum(inv) from ghost group by wid")

    def test_unknown_strategy(self, db):
        with pytest.raises(QueryError):
            db.execute(
                "select wid, sum(inv) from invest group by wid",
                strategy="quantum",
            )

    def test_parse_error_propagates(self, db):
        with pytest.raises(ParseError):
            db.execute("select select select")


class TestReport:
    def test_summary_fields(self, db):
        report = db.execute(
            "select wid, sum(inv) from invest group by wid", strategy="ve+"
        )
        text = report.summary()
        assert "ve(degree)+ext" in text
        assert "est cost" in text
        assert "rows:" in text
        assert "linearity" in text

    def test_plan_text(self, db):
        report = db.execute("select wid, sum(inv) from invest group by wid")
        assert "Scan(" in report.plan_text
        assert "GroupBy" in report.plan_text

    def test_explain_without_execution(self, db):
        text = db.explain_query(
            "select wid, sum(inv) from invest group by wid", strategy="cs"
        )
        assert text.count("Scan") == 5

    def test_exec_stats_populated(self, db):
        report = db.execute("select wid, sum(inv) from invest group by wid")
        assert report.exec_stats.page_reads > 0
        assert report.exec_stats.elapsed() > 0


class TestCache:
    def test_build_and_query(self, db):
        db.build_cache("invest")
        got = db.query_cached("invest", "wid")
        expected = db.execute(
            "select wid, sum(inv) from invest group by wid"
        ).result
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_cached_evidence(self, db):
        db.build_cache("invest")
        got = db.query_cached("invest", "cid", evidence={"tid": 1})
        expected = db.execute(
            "select cid, sum(inv) from invest where tid = 1 group by cid"
        ).result
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_cache_required(self, db):
        with pytest.raises(QueryError):
            db.query_cached("invest", "wid")

    def test_cache_unknown_view(self, db):
        with pytest.raises(QueryError):
            db.build_cache("ghost")


class TestProfile:
    def test_profile_breakdown(self, db):
        profile = db.profile(
            "select wid, sum(inv) from invest group by wid"
        )
        assert profile.result.var_names == ("wid",)
        assert len(profile.operators) >= 6  # 5 scans + joins + groupbys
        text = profile.formatted()
        assert "Scan(location)" in text
        assert "total" in text

    def test_profile_requires_select(self, db):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            db.profile("create index on contracts(pid)")

    def test_profile_unknown_view(self, db):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            db.profile("select sum(f) from ghost")


class TestPlanCache:
    def test_repeat_query_hits_cache(self, db):
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        query = MPFQuery(view, ("wid",))
        first = db.run_query(query, use_plan_cache=True)
        assert db.plan_cache_hits == 0
        second = db.run_query(query, use_plan_cache=True)
        assert db.plan_cache_hits == 1
        assert second.optimization.algorithm.endswith("+cached")
        assert second.optimization.planning_seconds == 0.0
        assert first.result.equals(second.result, SUM_PRODUCT)

    def test_different_constants_miss(self, db):
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        db.run_query(
            MPFQuery(view, ("cid",), selections={"tid": 0}),
            use_plan_cache=True,
        )
        db.run_query(
            MPFQuery(view, ("cid",), selections={"tid": 1}),
            use_plan_cache=True,
        )
        assert db.plan_cache_hits == 0

    def test_cache_off_by_default(self, db):
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        query = MPFQuery(view, ("wid",))
        db.run_query(query)
        db.run_query(query)
        assert db.plan_cache_hits == 0

    def test_reload_table_invalidates_cache(self, db):
        """Regression: a reloaded table (new data, new statistics) used
        to be served the plan costed against the old statistics as
        ``+cached``."""
        from repro.datagen import supply_chain
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        query = MPFQuery(view, ("wid",))
        db.run_query(query, use_plan_cache=True)
        assert db.run_query(
            query, use_plan_cache=True
        ).optimization.algorithm.endswith("+cached")

        reloaded = supply_chain(scale=0.004, seed=8)
        db.reload_table(reloaded.catalog.relation("contracts"))

        after = db.run_query(query, use_plan_cache=True)
        assert not after.optimization.algorithm.endswith("+cached")
        assert db.plan_cache_hits == 1  # unchanged: no stale hit
        snap = db.metrics_snapshot()
        assert snap.get("plan_cache.invalidations") >= 1

        # The re-planned query answers against the *new* data.
        fresh = db.run_query(query)
        assert after.result.equals(fresh.result, SUM_PRODUCT)

    def test_create_index_invalidates_cache(self, db):
        """New physical structures change the search space too: the
        catalog epoch bump makes the old cache entry unreachable."""
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        query = MPFQuery(view, ("cid",), selections={"tid": 0})
        db.run_query(query, use_plan_cache=True)
        db.execute("create index on ctdeals(tid)")
        db.run_query(query, use_plan_cache=True)
        assert db.plan_cache_hits == 0


class TestRunBatch:
    def _query(self, db, *group_by, **selections):
        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", db._views["invest"].view_tables,
                       SUM_PRODUCT)
        return MPFQuery(view, tuple(group_by), selections=selections)

    def test_matches_individual_runs(self, db):
        queries = [
            self._query(db, "wid"),
            self._query(db, "cid"),
            self._query(db, "cid", tid=0),
        ]
        batch = db.run_batch(queries)
        assert len(batch.reports) == 3
        for query, report in zip(queries, batch.reports):
            solo = db.run_query(query)
            assert report.result.equals(solo.result, SUM_PRODUCT)

    def test_repeated_query_served_from_memo(self, db):
        query = self._query(db, "wid")
        batch = db.run_batch([query, query])
        first, second = batch.reports
        assert second.result.equals(first.result, SUM_PRODUCT)
        assert batch.memo_hits >= 1
        # The repeat pays a memo hit, not IO or operator work.
        assert second.exec_stats.page_reads == 0
        assert second.exec_stats.operators_run == 0
        assert second.exec_stats.elapsed() < first.exec_stats.elapsed()

    def test_shared_scans_deduplicated(self, db):
        batch = db.run_batch([
            self._query(db, "wid"),
            self._query(db, "cid"),
        ])
        # Both plans scan the same five base tables; CSE merges them.
        assert batch.shared_subplans >= 4
        assert "unique" in batch.summary()

    def test_batch_reads_fewer_pages_than_solo_runs(self, db):
        queries = [self._query(db, "wid"), self._query(db, "wid")]
        solo = sum(
            db.run_query(q).exec_stats.page_reads for q in queries
        )
        batch = db.run_batch(queries)
        assert batch.stats.page_reads < solo

    def test_empty_batch_rejected(self, db):
        with pytest.raises(QueryError):
            db.run_batch([])

    def test_mixed_semirings_rejected(self, db):
        from repro.query import MPFQuery, MPFView
        from repro.semiring import MAX_PRODUCT

        tables = db._views["invest"].view_tables
        q1 = self._query(db, "wid")
        q2 = MPFQuery(MPFView("invest", tables, MAX_PRODUCT), ("wid",))
        with pytest.raises(QueryError):
            db.run_batch([q1, q2])


class TestExplainAnalyze:
    """Cost-model calibration through the Database facade."""

    @pytest.fixture
    def chain_db(self, chain_relations):
        database = Database()
        for rel in chain_relations:
            database.register(rel)
        database.create_view("chain", ("s1", "s2", "s3"))
        return database

    def test_exact_stats_calibrate_to_unit_q_error(self, chain_db):
        report = chain_db.explain_analyze(
            "select d, sum(f) from chain group by d"
        )
        calib = report.calibration
        assert calib is not None
        assert calib.plan_q_error == 1.0
        assert all(n.q_error == 1.0 for n in calib.nodes)
        assert calib.stats_epoch == chain_db.catalog.stats_epoch

    def test_result_matches_plain_execution(self, chain_db):
        sql = "select d, sum(f) from chain group by d"
        report = chain_db.explain_analyze(sql)
        plain = chain_db.execute(sql)
        assert report.result.equals(plain.result, SUM_PRODUCT)

    def test_skewed_reload_produces_misestimate(self, chain_db):
        from repro.data import FunctionalRelation, var

        a, b = var("a", 3), var("b", 4)
        rows = [(i, 0, 1.0) for i in range(3)]
        rows += [(0, j, 1.0) for j in range(1, 4)]
        chain_db.reload_table(
            FunctionalRelation.from_rows([a, b], rows, name="s1")
        )
        report = chain_db.explain_analyze(
            "select d, sum(f) from chain where b = 0 group by d"
        )
        calib = report.calibration
        assert calib.plan_q_error > 1.0
        assert calib.dominant is not None
        assert calib.dominant.source == "selection"

    def test_calibration_document_validates(self, chain_db):
        from repro.obs.validate import validate_document

        report = chain_db.explain_analyze(
            "select d, sum(f) from chain group by d", audit_plans=True
        )
        doc = report.to_calibration_dict()
        assert validate_document(doc) == "repro.calibration.v1"
        assert doc["audit"]["plan_regret"] >= 1.0
        assert any(c["chosen"] for c in doc["audit"]["candidates"])

    def test_explain_dict_carries_actuals(self, chain_db):
        from repro.obs.validate import validate_document

        report = chain_db.explain_analyze(
            "select d, sum(f) from chain group by d"
        )
        doc = report.to_explain_dict()
        assert validate_document(doc) == "repro.explain.v1"
        assert doc["plan"]["actual"]["rows"] == report.result.ntuples
        assert doc["plan"]["q_error"] == 1.0

    def test_plan_text_and_profile_show_q_errors(self, chain_db):
        report = chain_db.explain_analyze(
            "select d, sum(f) from chain group by d"
        )
        assert "q=1.00" in report.plan_text
        assert "act=" in report.plan_text
        formatted = report.formatted()
        assert "q-err" in formatted
        assert "plan q-error: 1.00" in formatted

    def test_audit_respects_max_tables(self, chain_db):
        report = chain_db.explain_analyze(
            "select d, sum(f) from chain group by d",
            audit_plans=True,
            audit_max_tables=2,
        )
        assert report.audit is None

    def test_audit_replays_do_not_skew_query_metrics(self, chain_db):
        sql = "select d, sum(f) from chain group by d"
        chain_db.explain_analyze(sql, audit_plans=False)
        before = chain_db.metrics_snapshot()
        chain_db.explain_analyze(sql, audit_plans=True)
        delta = chain_db.metrics_snapshot().diff(before).to_dict()
        # Exactly one more profiled execution's worth of queries.* /
        # query.* work, despite several replays.
        assert delta.get("calib.plans_replayed", {}).get("value", 0) >= 2
        runs = sum(
            entry["value"] for key, entry in delta.items()
            if key.startswith("query.operator_runs")
        )
        first = sum(
            entry["value"] for key, entry in before.to_dict().items()
            if key.startswith("query.operator_runs")
        )
        assert runs == first  # replay published nothing into query.*

    def test_calibrate_false_skips_calibration(self, chain_db):
        report = chain_db.explain_analyze(
            "select d, sum(f) from chain group by d", calibrate=False
        )
        assert report.calibration is None
        with pytest.raises(QueryError):
            report.to_calibration_dict()

    def test_calib_metrics_published(self, chain_db):
        chain_db.explain_analyze("select d, sum(f) from chain group by d")
        snap = chain_db.metrics_snapshot()
        assert snap.get("calib.runs") == 1

    def test_non_select_rejected(self, chain_db):
        with pytest.raises(QueryError):
            chain_db.explain_analyze("create index on s1(a)")
