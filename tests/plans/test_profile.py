"""Tests for the execution profiler."""

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.plans import (
    GroupBy,
    ProductJoin,
    Scan,
    execute,
    profile_execution,
)
from repro.semiring import SUM_PRODUCT


@pytest.fixture
def setting(rng):
    cat = Catalog()
    cat.register(complete_relation([var("a", 6), var("b", 5)], rng=rng,
                                   name="s1"))
    cat.register(complete_relation([var("b", 5), var("c", 4)], rng=rng,
                                   name="s2"))
    plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
    return cat, plan


class TestProfile:
    def test_result_matches_plain_execution(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        expected, _ = execute(plan, cat, SUM_PRODUCT)
        assert profile.result.equals(expected, SUM_PRODUCT)

    def test_one_entry_per_operator(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        assert len(profile.operators) == plan.count_nodes()
        labels = [op.label for op in profile.operators]
        assert labels[-1].startswith("GroupBy")  # root finishes last
        assert labels[0].startswith("Scan")

    def test_deltas_sum_to_total(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        assert sum(op.tuples for op in profile.operators) == (
            profile.total.tuples_processed
        )
        assert sum(op.page_reads for op in profile.operators) == (
            profile.total.page_reads
        )
        assert sum(op.elapsed for op in profile.operators) == pytest.approx(
            profile.total.elapsed()
        )

    def test_scans_carry_the_reads(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        for op in profile.operators:
            if op.label.startswith("Scan"):
                assert op.page_reads >= 1
            else:
                assert op.page_reads == 0

    def test_formatted_table(self, setting):
        cat, plan = setting
        text = profile_execution(plan, cat, SUM_PRODUCT).formatted()
        assert "operator" in text
        assert "total" in text
        assert "Scan(s1)" in text


class TestProfileReporting:
    """Regression: formatted() used to drop buffer hits, memo hits,
    and retries even though IOStats tracked all three."""

    def test_buffer_hits_column(self, setting):
        from repro.storage import BufferPool

        cat, plan = setting
        pool = BufferPool(capacity_pages=1024)
        profile_execution(plan, cat, SUM_PRODUCT, pool=pool)  # warm
        profile = profile_execution(plan, cat, SUM_PRODUCT, pool=pool)
        assert profile.total.buffer_hits > 0
        assert "hits" in profile.formatted().splitlines()[0]
        scans = [
            op for op in profile.operators if op.label.startswith("Scan")
        ]
        assert sum(op.buffer_hits for op in scans) == (
            profile.total.buffer_hits
        )

    def test_memo_hits_footer(self, setting):
        from repro.obs import QueryTracer
        from repro.plans import lower
        from repro.plans.profile import ExecutionProfile
        from repro.plans.runtime import ExecutionContext, evaluate_dag

        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        evaluate_dag(lower(plan), ctx)
        (result,) = evaluate_dag(lower(plan), ctx)  # served from memo
        profile = ExecutionProfile(
            result=result, operators=tracer.operators, total=ctx.stats
        )
        assert profile.total.memo_hits == 1
        text = profile.formatted()
        assert "memo hits: 1" in text
        assert "[memo]" in text

    def test_retries_column_and_footer(self, setting):
        from repro.plans import QueryGuard
        from repro.storage import BufferPool, FaultInjector, PageId

        cat, plan = setting
        injector = FaultInjector()
        heapfile = cat.heapfile("s1")
        for page_no in range(heapfile.n_pages):
            injector.fail_page(PageId(heapfile.file_id, page_no), times=1)
        profile = profile_execution(
            plan, cat, SUM_PRODUCT,
            pool=BufferPool(injector=injector),
            guard=QueryGuard(retry_budget=1000),
        )
        assert profile.total.retries == heapfile.n_pages
        text = profile.formatted()
        assert f"retries: {heapfile.n_pages} (waited" in text
        scan_rows = [
            op for op in profile.operators if op.label == "Scan(s1)"
        ]
        assert scan_rows[0].retries == heapfile.n_pages

    def test_to_dict_round_trips(self, setting):
        import json

        cat, plan = setting
        doc = profile_execution(plan, cat, SUM_PRODUCT).to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert len(doc["operators"]) == plan.count_nodes()
        assert doc["total"]["elapsed"] > 0
        assert doc["trace"]["name"] == "query"

    def test_profiling_tracer_is_the_query_tracer(self):
        from repro.obs import QueryTracer
        from repro.plans.profile import ProfilingTracer

        assert ProfilingTracer is QueryTracer
