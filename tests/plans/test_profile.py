"""Tests for the execution profiler."""

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.plans import (
    GroupBy,
    ProductJoin,
    Scan,
    execute,
    profile_execution,
)
from repro.semiring import SUM_PRODUCT


@pytest.fixture
def setting(rng):
    cat = Catalog()
    cat.register(complete_relation([var("a", 6), var("b", 5)], rng=rng,
                                   name="s1"))
    cat.register(complete_relation([var("b", 5), var("c", 4)], rng=rng,
                                   name="s2"))
    plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
    return cat, plan


class TestProfile:
    def test_result_matches_plain_execution(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        expected, _ = execute(plan, cat, SUM_PRODUCT)
        assert profile.result.equals(expected, SUM_PRODUCT)

    def test_one_entry_per_operator(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        assert len(profile.operators) == plan.count_nodes()
        labels = [op.label for op in profile.operators]
        assert labels[-1].startswith("GroupBy")  # root finishes last
        assert labels[0].startswith("Scan")

    def test_deltas_sum_to_total(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        assert sum(op.tuples for op in profile.operators) == (
            profile.total.tuples_processed
        )
        assert sum(op.page_reads for op in profile.operators) == (
            profile.total.page_reads
        )
        assert sum(op.elapsed for op in profile.operators) == pytest.approx(
            profile.total.elapsed()
        )

    def test_scans_carry_the_reads(self, setting):
        cat, plan = setting
        profile = profile_execution(plan, cat, SUM_PRODUCT)
        for op in profile.operators:
            if op.label.startswith("Scan"):
                assert op.page_reads >= 1
            else:
                assert op.page_reads == 0

    def test_formatted_table(self, setting):
        cat, plan = setting
        text = profile_execution(plan, cat, SUM_PRODUCT).formatted()
        assert "operator" in text
        assert "total" in text
        assert "Scan(s1)" in text
