"""QueryGuard: deadlines, budgets, cancellation, ceilings, degrade."""

import pytest

from repro.data import complete_relation, var
from repro.errors import (
    MemoryLimitExceeded,
    QueryCancelled,
    QueryTimeout,
)
from repro.plans import (
    ExecutionContext,
    GroupBy,
    ProductJoin,
    QueryGuard,
    Scan,
    evaluate,
)
from repro.semiring import SUM_PRODUCT
from repro.storage import IOStats, PageGeometry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def relations(rng):
    a, b, c = var("a", 4), var("b", 3), var("c", 2)
    return {
        "s1": complete_relation([a, b], rng=rng, name="s1"),
        "s2": complete_relation([b, c], rng=rng, name="s2"),
    }


PLAN = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])


class TestDeadline:
    def test_wall_clock_deadline_raises(self, relations):
        clock = FakeClock()
        guard = QueryGuard(deadline_seconds=10.0, clock=clock)
        stats = IOStats()
        guard.restart(stats)
        guard.check(stats)  # within deadline
        clock.advance(11.0)
        with pytest.raises(QueryTimeout):
            guard.check(stats)

    def test_restart_opens_fresh_window(self, relations):
        clock = FakeClock()
        guard = QueryGuard(deadline_seconds=10.0, clock=clock)
        stats = IOStats()
        guard.restart(stats)
        clock.advance(11.0)
        guard.restart(stats)
        guard.check(stats)  # new window, no timeout

    def test_cost_budget_is_deterministic(self, relations):
        stats = IOStats()
        guard = QueryGuard(cost_budget=500.0)
        guard.restart(stats)
        stats.charge_cpu(400)
        guard.check(stats)
        stats.charge_cpu(200)
        with pytest.raises(QueryTimeout):
            guard.check(stats)

    def test_cost_budget_window_excludes_prior_work(self):
        stats = IOStats()
        stats.charge_cpu(10_000)  # earlier queries' spend
        guard = QueryGuard(cost_budget=500.0)
        guard.restart(stats)
        guard.check(stats)  # only spend since restart counts

    def test_tiny_cost_budget_stops_evaluation(self, relations):
        guard = QueryGuard(cost_budget=1.0)
        ctx = ExecutionContext(relations, SUM_PRODUCT, guard=guard)
        with pytest.raises(QueryTimeout):
            evaluate(PLAN, ctx)

    def test_unlimited_guard_never_fires(self, relations):
        guard = QueryGuard()
        ctx = ExecutionContext(relations, SUM_PRODUCT, guard=guard)
        result = evaluate(PLAN, ctx)
        assert result.ntuples == 4


class TestCancellation:
    def test_cancel_raises_on_next_check(self):
        guard = QueryGuard()
        stats = IOStats()
        guard.restart(stats)
        guard.cancel()
        assert guard.cancelled
        with pytest.raises(QueryCancelled):
            guard.check(stats)

    def test_cancellation_survives_restart(self):
        guard = QueryGuard()
        stats = IOStats()
        guard.cancel()
        guard.restart(stats)
        with pytest.raises(QueryCancelled):
            guard.check(stats)

    def test_uncancel_restores_service(self):
        guard = QueryGuard()
        stats = IOStats()
        guard.cancel()
        guard.uncancel()
        guard.restart(stats)
        guard.check(stats)

    def test_cancelled_guard_stops_evaluation(self, relations):
        guard = QueryGuard()
        guard.cancel()
        ctx = ExecutionContext(relations, SUM_PRODUCT, guard=guard)
        with pytest.raises(QueryCancelled):
            evaluate(PLAN, ctx)


class TestMemoryCeiling:
    def test_admit_pages_accumulates(self):
        guard = QueryGuard(memory_limit_pages=10)
        guard.restart()
        guard.admit_pages(6)
        guard.admit_pages(4)  # exactly at the ceiling: fine
        with pytest.raises(MemoryLimitExceeded):
            guard.admit_pages(1)

    def test_restart_resets_quota(self):
        guard = QueryGuard(memory_limit_pages=10)
        guard.restart()
        guard.admit_pages(10)
        guard.restart()
        guard.admit_pages(10)  # fresh window, fresh quota

    def test_no_limit_admits_anything(self):
        guard = QueryGuard()
        guard.restart()
        guard.admit_pages(10**9)

    def test_oversized_intermediate_aborts_query(self, rng):
        # ~8000-row join output: several pages of intermediates.
        a, b, c = var("a", 20), var("b", 20), var("c", 20)
        relations = {
            "s1": complete_relation([a, b], rng=rng, name="s1"),
            "s2": complete_relation([b, c], rng=rng, name="s2"),
        }
        guard = QueryGuard(memory_limit_pages=1)
        ctx = ExecutionContext(relations, SUM_PRODUCT, guard=guard)
        with pytest.raises(MemoryLimitExceeded):
            evaluate(GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"]), ctx)


class _DegradeTracer:
    def __init__(self):
        self.degraded = []

    def on_execute(self, node, result, delta):
        pass

    def on_memo_hit(self, node, result):
        pass

    def on_degrade(self, node, description):
        self.degraded.append((node.label(), description))


class _PlainTracer:
    """A tracer without the optional on_degrade hook."""

    def __init__(self):
        self.executed = 0

    def on_execute(self, node, result, delta):
        self.executed += 1

    def on_memo_hit(self, node, result):
        pass


class TestGracefulDegradation:
    @pytest.fixture
    def big_relations(self, rng):
        # 400 tuples of arity 2 -> more than one page.
        a, b, c = var("a", 20), var("b", 20), var("c", 2)
        return {
            "s1": complete_relation([a, b], rng=rng, name="s1"),
            "s2": complete_relation([b, c], rng=rng, name="s2"),
        }

    def _pages(self, relations, name):
        rel = relations[name]
        return PageGeometry(rel.arity).pages_for(rel.ntuples)

    def test_hash_join_degrades_to_sort_merge(self, big_relations):
        assert self._pages(big_relations, "s1") > 1
        guard = QueryGuard()
        tracer = _DegradeTracer()
        ctx = ExecutionContext(
            big_relations, SUM_PRODUCT, workmem_pages=1,
            guard=guard, tracer=tracer,
        )
        plan = ProductJoin(Scan("s1"), Scan("s2"), method="hash")
        result = evaluate(plan, ctx)
        assert result.ntuples == 20 * 20 * 2
        assert guard.degradations
        assert "sort-merge" in guard.degradations[0]
        assert tracer.degraded and tracer.degraded[0][0] == "ProductJoin"

    def test_hash_aggregation_degrades_to_sort(self, big_relations):
        guard = QueryGuard()
        ctx = ExecutionContext(
            big_relations, SUM_PRODUCT, workmem_pages=1, guard=guard
        )
        result = evaluate(GroupBy(Scan("s1"), ["a"], method="hash"), ctx)
        assert result.ntuples == 20
        assert any("sort" in d for d in guard.degradations)

    def test_degradation_disabled_raises(self, big_relations):
        guard = QueryGuard(allow_degrade=False)
        ctx = ExecutionContext(
            big_relations, SUM_PRODUCT, workmem_pages=1, guard=guard
        )
        plan = ProductJoin(Scan("s1"), Scan("s2"), method="hash")
        with pytest.raises(MemoryLimitExceeded):
            evaluate(plan, ctx)

    def test_degraded_result_matches_undegraded(self, big_relations):
        plan = GroupBy(
            ProductJoin(Scan("s1"), Scan("s2"), method="hash"),
            ["a"], method="hash",
        )
        plain = evaluate(
            plan, ExecutionContext(big_relations, SUM_PRODUCT)
        )
        guarded = evaluate(
            plan,
            ExecutionContext(
                big_relations, SUM_PRODUCT, workmem_pages=1,
                guard=QueryGuard(),
            ),
        )
        assert guarded.equals(plain, SUM_PRODUCT)

    def test_tracer_without_on_degrade_is_tolerated(self, big_relations):
        tracer = _PlainTracer()
        ctx = ExecutionContext(
            big_relations, SUM_PRODUCT, workmem_pages=1,
            guard=QueryGuard(), tracer=tracer,
        )
        plan = ProductJoin(Scan("s1"), Scan("s2"), method="hash")
        evaluate(plan, ctx)
        assert tracer.executed > 0

    def test_no_degradation_without_guard(self, big_relations):
        # Unguarded runs keep the historical spill behavior untouched.
        ctx = ExecutionContext(big_relations, SUM_PRODUCT, workmem_pages=1)
        plan = ProductJoin(Scan("s1"), Scan("s2"), method="hash")
        evaluate(plan, ctx)  # no guard, no degrade, no error

    def test_profile_reports_degradation(self, big_relations):
        from repro.plans import profile_execution

        plan = ProductJoin(Scan("s1"), Scan("s2"), method="hash")
        profile = profile_execution(
            plan, big_relations, SUM_PRODUCT,
            workmem_pages=1, guard=QueryGuard(),
        )
        text = profile.formatted()
        assert "[degraded]" in text
        assert "degraded: hash join degraded to sort-merge" in text


class TestExecutorIntegration:
    def test_run_with_guard_restores_context(self, relations):
        from repro.plans import Executor

        executor = Executor(relations, SUM_PRODUCT)
        guard = QueryGuard(cost_budget=10**9)
        result, stats = executor.run(PLAN, guard=guard)
        assert result.ntuples == 4
        assert executor.context.guard is None

    def test_run_guard_violation_restores_context(self, relations):
        from repro.plans import Executor

        executor = Executor(relations, SUM_PRODUCT)
        with pytest.raises(QueryTimeout):
            executor.run(PLAN, guard=QueryGuard(cost_budget=1.0))
        assert executor.context.guard is None
        # The executor still works afterwards.
        result, _ = executor.run(PLAN)
        assert result.ntuples == 4


class TestDatabaseGuardFactory:
    def test_make_guard_inherits_injected_clock(self):
        from repro.engine import Database

        clock = FakeClock(now=100.0)
        db = Database(clock=clock)
        guard = db.make_guard(deadline_seconds=10.0)
        stats = IOStats()
        guard.restart(stats)
        guard.check(stats)
        clock.advance(11.0)
        with pytest.raises(QueryTimeout):
            guard.check(stats)

    def test_make_guard_without_clock_uses_wall_default(self):
        from repro.engine import Database

        guard = Database().make_guard(deadline_seconds=3600.0)
        stats = IOStats()
        guard.restart(stats)
        guard.check(stats)  # an hour of wall clock has not passed

    def test_make_guard_explicit_clock_wins(self):
        from repro.engine import Database

        db_clock, guard_clock = FakeClock(), FakeClock()
        db = Database(clock=db_clock)
        guard = db.make_guard(clock=guard_clock)
        assert guard._clock is guard_clock
