"""The physical-operator runtime: context, memo, tracer, spill."""

import pytest

from repro.algebra import marginalize, product_join
from repro.algebra.semijoin import product_semijoin, update_semijoin
from repro.data import complete_relation, var
from repro.errors import PlanError
from repro.plans import (
    ExecutionContext,
    GroupBy,
    IndexScan,
    ProductJoin,
    Scan,
    SemiJoin,
    evaluate,
    evaluate_dag,
    lower,
    operator_for,
)
from repro.semiring import BOOLEAN, SUM_PRODUCT
from repro.storage import BufferPool, PageGeometry


@pytest.fixture
def relations(rng):
    a, b, c = var("a", 4), var("b", 3), var("c", 2)
    return {
        "s1": complete_relation([a, b], rng=rng, name="s1"),
        "s2": complete_relation([b, c], rng=rng, name="s2"),
    }


@pytest.fixture
def ctx(relations):
    return ExecutionContext(relations, SUM_PRODUCT)


class _RecordingTracer:
    def __init__(self):
        self.executed = []
        self.memoized = []

    def on_execute(self, node, result, delta):
        self.executed.append((node.label(), delta))

    def on_memo_hit(self, node, result):
        self.memoized.append(node.label())


class TestEvaluate:
    def test_matches_algebra(self, ctx, relations):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        result = evaluate(plan, ctx)
        expected = marginalize(
            product_join(relations["s1"], relations["s2"], SUM_PRODUCT),
            ["a"],
            SUM_PRODUCT,
        )
        assert result.equals(expected, SUM_PRODUCT)
        assert ctx.stats.page_reads > 0

    def test_unknown_table(self, ctx):
        with pytest.raises(PlanError):
            evaluate(Scan("ghost"), ctx)

    def test_shared_subplan_executes_once(self, ctx):
        join = ProductJoin(Scan("s1"), Scan("s2"))
        tracer = _RecordingTracer()
        ctx.tracer = tracer
        dag = lower([GroupBy(join, ["a"]), GroupBy(join, ["c"])])
        evaluate_dag(dag, ctx)
        labels = [label for label, _ in tracer.executed]
        assert labels.count("ProductJoin") == 1
        assert len(labels) == dag.unique_nodes
        assert not tracer.memoized


class TestMemo:
    def test_hit_across_calls_on_same_context(self, ctx):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        first = evaluate(plan, ctx)
        reads = ctx.stats.page_reads
        again = evaluate(plan, ctx)
        assert again.equals(first, SUM_PRODUCT)
        assert ctx.stats.page_reads == reads  # no IO the second time
        assert ctx.stats.memo_hits == 1

    def test_memoized_subtree_is_skipped(self, ctx):
        join = ProductJoin(Scan("s1"), Scan("s2"))
        evaluate(join, ctx)
        tracer = _RecordingTracer()
        ctx.tracer = tracer
        evaluate(GroupBy(join, ["a"]), ctx)
        # Only the GroupBy runs; the join comes from the memo and its
        # scans are never visited.
        assert [label for label, _ in tracer.executed] == ["GroupBy(a)"]
        assert tracer.memoized == ["ProductJoin"]

    def test_bind_invalidates_dependents(self, ctx, relations):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        evaluate(plan, ctx)
        doubled = relations["s1"].with_measure(relations["s1"].measure * 2)
        ctx.bind("s1", doubled)
        result = evaluate(plan, ctx)
        expected = marginalize(
            product_join(doubled, relations["s2"], SUM_PRODUCT),
            ["a"],
            SUM_PRODUCT,
        )
        assert result.equals(expected, SUM_PRODUCT)
        # Only Scan(s2) — independent of the rebound name — survives.
        assert ctx.stats.memo_hits == 1

    def test_bind_keeps_independent_entries(self, ctx, relations):
        s1_only = GroupBy(Scan("s1"), ["a"])
        s2_only = GroupBy(Scan("s2"), ["c"])
        evaluate(s1_only, ctx)
        evaluate(s2_only, ctx)
        ctx.bind("s1", relations["s1"])
        evaluate(s2_only, ctx)
        assert ctx.stats.memo_hits == 1

    def test_reset_memo(self, ctx):
        plan = GroupBy(Scan("s1"), ["a"])
        evaluate(plan, ctx)
        ctx.reset_memo()
        evaluate(plan, ctx)
        assert ctx.stats.memo_hits == 0


class TestSemiJoinOperator:
    def test_product_kind(self, ctx, relations):
        result = evaluate(SemiJoin(Scan("s1"), Scan("s2"), "product"), ctx)
        expected = product_semijoin(
            relations["s1"], relations["s2"], SUM_PRODUCT
        )
        assert result.equals(expected, SUM_PRODUCT)

    def test_update_kind(self, ctx, relations):
        result = evaluate(SemiJoin(Scan("s1"), Scan("s2"), "update"), ctx)
        expected = update_semijoin(
            relations["s1"], relations["s2"], SUM_PRODUCT
        )
        assert result.equals(expected, SUM_PRODUCT)

    def test_kind_validated(self):
        with pytest.raises(PlanError):
            SemiJoin(Scan("s1"), Scan("s2"), "sideways")

    def test_unknown_node_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(PlanError):
            operator_for(Mystery())


class TestSpillAccounting:
    def _measure_pages(self, relations):
        joined = product_join(
            relations["s1"], relations["s2"], SUM_PRODUCT
        )
        return PageGeometry(joined.arity).pages_for(joined.ntuples), joined

    def test_no_spill_at_exact_budget(self, relations):
        pages, _ = self._measure_pages(relations)
        ctx = ExecutionContext(relations, SUM_PRODUCT, workmem_pages=pages)
        evaluate(ProductJoin(Scan("s1"), Scan("s2")), ctx)
        assert ctx.stats.page_writes == 0

    def test_spill_charges_exact_pages_past_budget(self, relations):
        pages, _ = self._measure_pages(relations)
        ctx = ExecutionContext(
            relations, SUM_PRODUCT, workmem_pages=pages - 1
        )
        evaluate(ProductJoin(Scan("s1"), Scan("s2")), ctx)
        assert ctx.stats.page_writes == pages


class TestContext:
    def test_supplied_empty_pool_is_used(self, relations):
        pool = BufferPool(capacity_pages=8)
        ctx = ExecutionContext(relations, SUM_PRODUCT, pool=pool)
        assert ctx.pool is pool

    def test_index_scan_needs_catalog(self, ctx):
        with pytest.raises(PlanError):
            evaluate(IndexScan("s1", {"a": 0}), ctx)

    def test_boolean_semiring_runs(self, relations):
        bool_rels = {
            name: rel.with_measure(rel.measure > rel.measure.mean())
            for name, rel in relations.items()
        }
        ctx = ExecutionContext(bool_rels, BOOLEAN)
        result = evaluate(
            GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"]), ctx
        )
        expected = marginalize(
            product_join(bool_rels["s1"], bool_rels["s2"], BOOLEAN),
            ["a"],
            BOOLEAN,
        )
        assert result.equals(expected, BOOLEAN)
