"""Structural keys and plan-DAG lowering (CSE)."""

from repro.plans import (
    GroupBy,
    IndexScan,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
    lower,
)


def _shared_join():
    return ProductJoin(Scan("s1"), Scan("s2"))


class TestStructuralKeys:
    def test_equal_for_identical_structure(self):
        a = GroupBy(_shared_join(), ["a"])
        b = GroupBy(_shared_join(), ["a"])
        assert a.structural_key() == b.structural_key()

    def test_physical_method_is_part_of_the_key(self):
        hash_join = ProductJoin(Scan("s1"), Scan("s2"), method="hash")
        merge_join = ProductJoin(Scan("s1"), Scan("s2"), method="sort_merge")
        assert hash_join.structural_key() != merge_join.structural_key()
        sort_gb = GroupBy(Scan("s1"), ["a"], method="sort")
        hash_gb = GroupBy(Scan("s1"), ["a"], method="hash")
        assert sort_gb.structural_key() != hash_gb.structural_key()

    def test_predicate_order_is_canonical(self):
        a = Select(Scan("s1"), {"x": 1, "y": 2})
        b = Select(Scan("s1"), {"y": 2, "x": 1})
        assert a.structural_key() == b.structural_key()

    def test_distinct_nodes_distinct_keys(self):
        keys = {
            Scan("s1").structural_key(),
            IndexScan("s1", {"x": 1}).structural_key(),
            Select(Scan("s1"), {"x": 1}).structural_key(),
            SemiJoin(Scan("s1"), Scan("s2"), "product").structural_key(),
            SemiJoin(Scan("s1"), Scan("s2"), "update").structural_key(),
        }
        assert len(keys) == 5

    def test_key_is_cached(self):
        plan = GroupBy(_shared_join(), ["a"])
        assert plan.structural_key() is plan.structural_key()


class TestLower:
    def test_repeated_scan_dedupes_within_one_tree(self):
        # s1 ⋈ s1: two tree occurrences of Scan(s1), one DAG node.
        plan = ProductJoin(Scan("s1"), Scan("s1"))
        dag = lower(plan)
        assert dag.tree_nodes == 3
        assert dag.unique_nodes == 2
        assert dag.shared_nodes == 1

    def test_shared_subplan_across_batch(self):
        q1 = GroupBy(_shared_join(), ["a"])
        q2 = GroupBy(_shared_join(), ["b"])
        dag = lower([q1, q2])
        # Join + both scans shared; only the two GroupBys are distinct.
        assert dag.unique_nodes == 5
        assert dag.shared_nodes == 3
        assert len(dag.roots) == 2
        assert dag.roots[0] == q1.structural_key()

    def test_duplicate_roots_preserved(self):
        q = GroupBy(_shared_join(), ["a"])
        dag = lower([q, q])
        assert dag.roots == (q.structural_key(), q.structural_key())
        assert dag.unique_nodes == 4

    def test_topological_order_children_first(self):
        plan = GroupBy(Select(_shared_join(), {"a": 0}), ["a"])
        dag = lower(plan)
        seen = set()
        for key in dag.topological():
            assert all(c in seen for c in dag.children[key])
            seen.add(key)
        assert seen == set(dag.nodes)

    def test_base_table_dependencies(self):
        q1 = GroupBy(_shared_join(), ["a"])
        q2 = GroupBy(Scan("s3"), ["c"])
        dag = lower([q1, q2])
        assert dag.base_tables(q1.structural_key()) == {"s1", "s2"}
        assert dag.base_tables(q2.structural_key()) == {"s3"}
        assert dag.base_tables(Scan("s1").structural_key()) == {"s1"}


class TestDeepPlans:
    """Structural keys, traversal, and lowering on very deep trees.

    All three are iterative; plans thousands of operators deep must
    not hit the interpreter recursion limit.
    """

    DEPTH = 5000

    def _deep_chain(self):
        plan = Scan("s1")
        for _ in range(self.DEPTH):
            plan = GroupBy(plan, ["a"])
        return plan

    def test_structural_key_on_deep_chain(self):
        plan = self._deep_chain()
        # Interning makes equal keys the same object, so comparing
        # independently built deep keys is identity, not recursion.
        assert plan.structural_key() is self._deep_chain().structural_key()

    def test_walk_and_count_on_deep_chain(self):
        plan = self._deep_chain()
        assert plan.count_nodes() == self.DEPTH + 1

    def test_lower_deep_chain(self):
        dag = lower(self._deep_chain())
        assert dag.unique_nodes == self.DEPTH + 1
        assert dag.shared_nodes == 0
        order = list(dag.topological())
        assert order[0] == Scan("s1").structural_key()
