"""Unit tests for plan nodes, annotation, printing, and execution."""

import pytest

from repro.catalog import Catalog
from repro.algebra import marginalize, product_join, restrict
from repro.cost import IOCostModel, SimpleCostModel
from repro.data import complete_relation, var
from repro.errors import PlanError
from repro.plans import (
    Executor,
    GroupBy,
    ProductJoin,
    Scan,
    Select,
    annotate,
    execute,
    explain,
    plan_cost,
)
from repro.semiring import MIN_SUM, SUM_PRODUCT
from repro.storage import BufferPool


@pytest.fixture
def small_catalog(rng):
    a, b, c = var("a", 4), var("b", 3), var("c", 2)
    cat = Catalog()
    cat.register(complete_relation([a, b], rng=rng, name="s1"))
    cat.register(complete_relation([b, c], rng=rng, name="s2"))
    return cat


class TestNodes:
    def test_base_tables(self, small_catalog):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        assert plan.base_tables() == ("s1", "s2")

    def test_count_nodes(self):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        assert plan.count_nodes() == 4
        assert plan.count_nodes(Scan) == 2
        assert plan.count_nodes(GroupBy) == 1

    def test_is_linear(self):
        linear = ProductJoin(ProductJoin(Scan("a"), Scan("b")), Scan("c"))
        assert linear.is_linear()
        bushy = ProductJoin(
            ProductJoin(Scan("a"), Scan("b")),
            ProductJoin(Scan("c"), Scan("d")),
        )
        assert not bushy.is_linear()

    def test_groupby_through_select_is_linear(self):
        plan = ProductJoin(Scan("a"), GroupBy(Scan("b"), ["x"]))
        assert plan.is_linear()

    def test_select_requires_predicate(self):
        with pytest.raises(PlanError):
            Select(Scan("a"), {})

    def test_output_variables_requires_annotation(self):
        with pytest.raises(PlanError):
            Scan("s1").output_variables()


class TestAnnotate:
    def test_fills_stats_and_costs(self, small_catalog):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        annotate(plan, small_catalog)
        for node in plan.walk():
            assert node.stats is not None
            assert node.total_cost is not None
        assert plan.stats.cardinality == 4
        assert plan.output_variables() == ("a",)

    def test_costs_accumulate(self, small_catalog):
        join = ProductJoin(Scan("s1"), Scan("s2"))
        plan = GroupBy(join, ["a"])
        annotate(plan, small_catalog)
        assert plan.total_cost == plan.op_cost + join.total_cost

    def test_groupby_on_missing_variable_rejected(self, small_catalog):
        plan = GroupBy(Scan("s1"), ["c"])
        with pytest.raises(PlanError):
            annotate(plan, small_catalog)

    def test_plan_cost_convenience(self, small_catalog):
        plan = ProductJoin(Scan("s1"), Scan("s2"))
        cost = plan_cost(plan, small_catalog)
        assert cost == 12 * 6  # |s1| * |s2| under the simple model

    def test_io_model_changes_costs(self, small_catalog):
        plan = ProductJoin(Scan("s1"), Scan("s2"))
        simple = plan_cost(plan, small_catalog, SimpleCostModel())
        io = plan_cost(plan, small_catalog, IOCostModel())
        assert simple != io

    def test_select_annotation(self, small_catalog):
        plan = Select(Scan("s1"), {"a": 1})
        annotate(plan, small_catalog)
        assert plan.stats.cardinality == pytest.approx(3.0)

    def test_stats_override(self, small_catalog):
        from repro.cost import select_stats

        base = small_catalog.stats("s1")
        reduced = select_stats(base, {"a": 0})
        plan = Scan("s1")
        annotate(plan, small_catalog, overrides={"s1": reduced})
        assert plan.stats.cardinality == reduced.cardinality


class TestExplain:
    def test_tree_rendering(self, small_catalog):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        text = explain(plan)
        assert "GroupBy(a)" in text
        assert text.count("Scan") == 2
        # Children indented under parents.
        lines = text.splitlines()
        assert lines[0].startswith("GroupBy")
        assert lines[1].startswith("  ProductJoin")

    def test_annotations_rendered(self, small_catalog):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        annotate(plan, small_catalog)
        assert "card=" in explain(plan)
        assert "cost=" in explain(plan)

    def test_empty_groupby_symbol(self):
        assert "∅" in GroupBy(Scan("x"), []).label()


class TestExecutor:
    def test_matches_algebra_oracle(self, small_catalog):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
        result, stats = execute(plan, small_catalog, SUM_PRODUCT)
        expected = marginalize(
            product_join(
                small_catalog.relation("s1"),
                small_catalog.relation("s2"),
                SUM_PRODUCT,
            ),
            ["a"],
            SUM_PRODUCT,
        )
        assert result.equals(expected, SUM_PRODUCT)
        assert stats.page_reads >= 2
        assert stats.operators_run == 4

    def test_select_node(self, small_catalog):
        plan = Select(Scan("s1"), {"a": 1})
        result, _ = execute(plan, small_catalog, SUM_PRODUCT)
        expected = restrict(small_catalog.relation("s1"), {"a": 1})
        assert result.equals(expected, SUM_PRODUCT)

    def test_min_sum_execution(self, small_catalog):
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["c"])
        result, _ = execute(plan, small_catalog, MIN_SUM)
        expected = marginalize(
            product_join(
                small_catalog.relation("s1"),
                small_catalog.relation("s2"),
                MIN_SUM,
            ),
            ["c"],
            MIN_SUM,
        )
        assert result.equals(expected, MIN_SUM)

    def test_unknown_table(self, small_catalog):
        with pytest.raises(PlanError):
            execute(Scan("ghost"), small_catalog, SUM_PRODUCT)

    def test_plain_mapping_environment(self, rng):
        a = var("a", 3)
        rel = complete_relation([a], rng=rng, name="r")
        result, stats = execute(Scan("r"), {"r": rel}, SUM_PRODUCT)
        assert result.equals(rel, SUM_PRODUCT)

    def test_buffer_reuse_across_queries(self, small_catalog):
        pool = BufferPool()
        executor = Executor(small_catalog, SUM_PRODUCT, pool=pool)
        plan = ProductJoin(Scan("s1"), Scan("s2"))
        _, stats1 = executor.run(plan)
        _, stats2 = executor.run(plan)
        assert stats2.page_reads == 0  # everything cached
        assert stats2.buffer_hits > 0

    def test_custom_empty_pool_is_honored(self, small_catalog):
        """Regression: a freshly constructed (empty, hence falsy) pool
        must not be silently replaced by the default one."""
        pool = BufferPool(capacity_pages=1)
        executor = Executor(small_catalog, SUM_PRODUCT, pool=pool)
        assert executor.pool is pool

    def test_tiny_pool_rereads_pages(self, rng):
        big = complete_relation(
            [var("x", 400), var("y", 40)], rng=rng, name="big"
        )
        cat = Catalog()
        cat.register(big)
        pool = BufferPool(capacity_pages=2)
        executor = Executor(cat, SUM_PRODUCT, pool=pool)
        _, first = executor.run(Scan("big"))
        _, second = executor.run(Scan("big"))
        assert second.page_reads == first.page_reads  # nothing cached
        assert second.buffer_hits == 0

    def test_spill_charged_for_large_results(self, rng):
        big1 = complete_relation([var("x", 300), var("y", 300)], rng=rng, name="b1")
        big2 = complete_relation([var("y", 300), var("z", 2)], rng=rng, name="b2")
        cat = Catalog()
        cat.register_all([big1, big2])
        plan = ProductJoin(Scan("b1"), Scan("b2"))
        executor = Executor(cat, SUM_PRODUCT, workmem_pages=4)
        _, stats = executor.run(plan)
        assert stats.page_writes > 0
