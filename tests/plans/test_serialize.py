"""Plan serialization round-trip tests."""

import pytest

from repro.errors import PlanError
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination
from repro.plans import (
    FilterScan,
    GroupBy,
    IndexScan,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
    execute,
    explain,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.semiring import SUM_PRODUCT


def _roundtrip(plan):
    return plan_from_json(plan_to_json(plan))


class TestRoundTrip:
    def test_structure_preserved(self):
        plan = GroupBy(
            ProductJoin(
                Select(Scan("a"), {"x": 1}),
                IndexScan("b", {"y": 2}),
                method="sort_merge",
            ),
            ["x"],
            method="hash",
        )
        rebuilt = _roundtrip(plan)
        assert explain(rebuilt) == explain(plan)
        assert rebuilt.child.method == "sort_merge"
        assert rebuilt.method == "hash"

    def test_optimizer_plan_roundtrips_and_executes(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        plan = VariableElimination("degree").optimize(spec, sc.catalog).plan
        rebuilt = _roundtrip(plan)
        original, _ = execute(plan, sc.catalog, SUM_PRODUCT)
        again, _ = execute(rebuilt, sc.catalog, SUM_PRODUCT)
        assert original.equals(again, SUM_PRODUCT)

    def test_json_defaults(self):
        plan = ProductJoin(Scan("a"), Scan("b"))
        data = plan_to_dict(plan)
        assert data["method"] == "hash"
        # Older payloads without method still load.
        del data["method"]
        rebuilt = plan_from_dict(data)
        assert rebuilt.method == "hash"

    def test_index_scan_fields(self):
        rebuilt = _roundtrip(IndexScan("contracts", {"pid": 3}))
        assert isinstance(rebuilt, IndexScan)
        assert rebuilt.table == "contracts"
        assert dict(rebuilt.predicate) == {"pid": 3}

    @pytest.mark.parametrize("method", ["hash", "sort_merge"])
    def test_product_join_method(self, method):
        plan = ProductJoin(Scan("a"), Scan("b"), method=method)
        rebuilt = _roundtrip(plan)
        assert rebuilt.method == method
        assert rebuilt.structural_key() == plan.structural_key()

    @pytest.mark.parametrize("method", ["sort", "hash"])
    def test_group_by_method(self, method):
        plan = GroupBy(Scan("a"), ["x", "y"], method=method)
        rebuilt = _roundtrip(plan)
        assert rebuilt.method == method
        assert rebuilt.group_names == ("x", "y")
        assert rebuilt.structural_key() == plan.structural_key()

    @pytest.mark.parametrize("kind", ["product", "update"])
    def test_semijoin_kind(self, kind):
        plan = SemiJoin(Scan("a"), Scan("b"), kind)
        rebuilt = _roundtrip(plan)
        assert isinstance(rebuilt, SemiJoin)
        assert rebuilt.kind == kind
        assert rebuilt.structural_key() == plan.structural_key()

    def test_semijoin_kind_defaults_to_product(self):
        data = plan_to_dict(SemiJoin(Scan("a"), Scan("b"), "update"))
        del data["kind"]
        assert plan_from_dict(data).kind == "product"

    def test_prepared_statement_workflow(self, tiny_supply_chain):
        """Persist a plan as JSON, reload in a 'new session', run it."""
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("cid",))
        payload = plan_to_json(
            CSPlusNonlinear().optimize(spec, sc.catalog).plan, indent=2
        )
        assert '"op":' in payload
        rebuilt = plan_from_json(payload)
        result, _ = execute(rebuilt, sc.catalog, SUM_PRODUCT)
        assert result.var_names == ("cid",)


class TestEveryNodeKind:
    """Introspective coverage: every concrete PlanNode round-trips.

    A new node type added to ``plans/nodes.py`` without serialization
    support fails here loudly — checkpointed runtime memos persist
    plans through ``plan_to_dict``, so coverage gaps would silently
    break crash recovery.
    """

    SAMPLES = {
        "Scan": lambda: Scan("a"),
        "IndexScan": lambda: IndexScan("a", {"x": 1}),
        "FilterScan": lambda: FilterScan("a", {"x": 1, "y": 0}),
        "Select": lambda: Select(Scan("a"), {"x": 2}),
        "ProductJoin": lambda: ProductJoin(
            Scan("a"), Scan("b"), method="sort_merge"
        ),
        "GroupBy": lambda: GroupBy(Scan("a"), ["x"], method="hash"),
        "SemiJoin": lambda: SemiJoin(Scan("a"), Scan("b"), "update"),
    }

    def _concrete_node_classes(self):
        import repro.plans.nodes as nodes_module
        from repro.plans.nodes import PlanNode

        return [
            obj
            for obj in vars(nodes_module).values()
            if isinstance(obj, type)
            and issubclass(obj, PlanNode)
            and obj is not PlanNode
        ]

    def test_every_concrete_node_has_a_sample(self):
        missing = [
            cls.__name__
            for cls in self._concrete_node_classes()
            if cls.__name__ not in self.SAMPLES
        ]
        assert not missing, (
            f"plan node kinds without serialization coverage: {missing}; "
            "extend plans/serialize.py and this test's SAMPLES"
        )

    @pytest.mark.parametrize("kind", sorted(SAMPLES))
    def test_round_trip_preserves_structural_key(self, kind):
        plan = self.SAMPLES[kind]()
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert type(rebuilt) is type(plan)
        # Structural keys are interned: identity, not just equality.
        assert rebuilt.structural_key() is plan.structural_key()

    def test_annotated_plan_round_trips_structure(self, tiny_supply_chain):
        from repro.plans.annotate import annotate

        sc = tiny_supply_chain
        plan = GroupBy(
            ProductJoin(Scan(sc.tables[0]), Scan(sc.tables[1])), []
        )
        annotate(plan, sc.catalog, choose_methods=True)
        assert plan.total_cost is not None
        rebuilt = plan_from_dict(plan_to_dict(plan))
        # Annotations are re-derivable and deliberately dropped; the
        # chosen physical methods (part of the structure) survive.
        assert rebuilt.structural_key() is plan.structural_key()
        assert rebuilt.stats is None and rebuilt.total_cost is None

    def test_unknown_node_class_fails_loudly_on_encode(self):
        from repro.plans.nodes import PlanNode

        class Teleport(PlanNode):
            __slots__ = ()

            def label(self):
                return "Teleport"

            def _key(self):
                return ("teleport",)

        with pytest.raises(PlanError, match="cannot serialize"):
            plan_to_dict(Teleport())


class TestErrors:
    def test_unknown_op(self):
        with pytest.raises(PlanError):
            plan_from_dict({"op": "teleport"})

    def test_malformed_dict(self):
        with pytest.raises(PlanError):
            plan_from_dict({"nope": 1})

    def test_invalid_json(self):
        with pytest.raises(PlanError):
            plan_from_json("{not json")
