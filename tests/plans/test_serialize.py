"""Plan serialization round-trip tests."""

import pytest

from repro.errors import PlanError
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination
from repro.plans import (
    GroupBy,
    IndexScan,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
    execute,
    explain,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.semiring import SUM_PRODUCT


def _roundtrip(plan):
    return plan_from_json(plan_to_json(plan))


class TestRoundTrip:
    def test_structure_preserved(self):
        plan = GroupBy(
            ProductJoin(
                Select(Scan("a"), {"x": 1}),
                IndexScan("b", {"y": 2}),
                method="sort_merge",
            ),
            ["x"],
            method="hash",
        )
        rebuilt = _roundtrip(plan)
        assert explain(rebuilt) == explain(plan)
        assert rebuilt.child.method == "sort_merge"
        assert rebuilt.method == "hash"

    def test_optimizer_plan_roundtrips_and_executes(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        plan = VariableElimination("degree").optimize(spec, sc.catalog).plan
        rebuilt = _roundtrip(plan)
        original, _ = execute(plan, sc.catalog, SUM_PRODUCT)
        again, _ = execute(rebuilt, sc.catalog, SUM_PRODUCT)
        assert original.equals(again, SUM_PRODUCT)

    def test_json_defaults(self):
        plan = ProductJoin(Scan("a"), Scan("b"))
        data = plan_to_dict(plan)
        assert data["method"] == "hash"
        # Older payloads without method still load.
        del data["method"]
        rebuilt = plan_from_dict(data)
        assert rebuilt.method == "hash"

    def test_index_scan_fields(self):
        rebuilt = _roundtrip(IndexScan("contracts", {"pid": 3}))
        assert isinstance(rebuilt, IndexScan)
        assert rebuilt.table == "contracts"
        assert dict(rebuilt.predicate) == {"pid": 3}

    @pytest.mark.parametrize("method", ["hash", "sort_merge"])
    def test_product_join_method(self, method):
        plan = ProductJoin(Scan("a"), Scan("b"), method=method)
        rebuilt = _roundtrip(plan)
        assert rebuilt.method == method
        assert rebuilt.structural_key() == plan.structural_key()

    @pytest.mark.parametrize("method", ["sort", "hash"])
    def test_group_by_method(self, method):
        plan = GroupBy(Scan("a"), ["x", "y"], method=method)
        rebuilt = _roundtrip(plan)
        assert rebuilt.method == method
        assert rebuilt.group_names == ("x", "y")
        assert rebuilt.structural_key() == plan.structural_key()

    @pytest.mark.parametrize("kind", ["product", "update"])
    def test_semijoin_kind(self, kind):
        plan = SemiJoin(Scan("a"), Scan("b"), kind)
        rebuilt = _roundtrip(plan)
        assert isinstance(rebuilt, SemiJoin)
        assert rebuilt.kind == kind
        assert rebuilt.structural_key() == plan.structural_key()

    def test_semijoin_kind_defaults_to_product(self):
        data = plan_to_dict(SemiJoin(Scan("a"), Scan("b"), "update"))
        del data["kind"]
        assert plan_from_dict(data).kind == "product"

    def test_prepared_statement_workflow(self, tiny_supply_chain):
        """Persist a plan as JSON, reload in a 'new session', run it."""
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("cid",))
        payload = plan_to_json(
            CSPlusNonlinear().optimize(spec, sc.catalog).plan, indent=2
        )
        assert '"op":' in payload
        rebuilt = plan_from_json(payload)
        result, _ = execute(rebuilt, sc.catalog, SUM_PRODUCT)
        assert result.var_names == ("cid",)


class TestErrors:
    def test_unknown_op(self):
        with pytest.raises(PlanError):
            plan_from_dict({"op": "teleport"})

    def test_malformed_dict(self):
        with pytest.raises(PlanError):
            plan_from_dict({"nope": 1})

    def test_invalid_json(self):
        with pytest.raises(PlanError):
            plan_from_json("{not json")
