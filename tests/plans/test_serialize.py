"""Plan serialization round-trip tests."""

import pytest

from repro.errors import PlanError
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination
from repro.plans import (
    GroupBy,
    IndexScan,
    ProductJoin,
    Scan,
    Select,
    execute,
    explain,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.semiring import SUM_PRODUCT


def _roundtrip(plan):
    return plan_from_json(plan_to_json(plan))


class TestRoundTrip:
    def test_structure_preserved(self):
        plan = GroupBy(
            ProductJoin(
                Select(Scan("a"), {"x": 1}),
                IndexScan("b", {"y": 2}),
                method="sort_merge",
            ),
            ["x"],
            method="hash",
        )
        rebuilt = _roundtrip(plan)
        assert explain(rebuilt) == explain(plan)
        assert rebuilt.child.method == "sort_merge"
        assert rebuilt.method == "hash"

    def test_optimizer_plan_roundtrips_and_executes(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        plan = VariableElimination("degree").optimize(spec, sc.catalog).plan
        rebuilt = _roundtrip(plan)
        original, _ = execute(plan, sc.catalog, SUM_PRODUCT)
        again, _ = execute(rebuilt, sc.catalog, SUM_PRODUCT)
        assert original.equals(again, SUM_PRODUCT)

    def test_json_defaults(self):
        plan = ProductJoin(Scan("a"), Scan("b"))
        data = plan_to_dict(plan)
        assert data["method"] == "hash"
        # Older payloads without method still load.
        del data["method"]
        rebuilt = plan_from_dict(data)
        assert rebuilt.method == "hash"

    def test_prepared_statement_workflow(self, tiny_supply_chain):
        """Persist a plan as JSON, reload in a 'new session', run it."""
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("cid",))
        payload = plan_to_json(
            CSPlusNonlinear().optimize(spec, sc.catalog).plan, indent=2
        )
        assert '"op":' in payload
        rebuilt = plan_from_json(payload)
        result, _ = execute(rebuilt, sc.catalog, SUM_PRODUCT)
        assert result.var_names == ("cid",)


class TestErrors:
    def test_unknown_op(self):
        with pytest.raises(PlanError):
            plan_from_dict({"op": "teleport"})

    def test_malformed_dict(self):
        with pytest.raises(PlanError):
            plan_from_dict({"nope": 1})

    def test_invalid_json(self):
        with pytest.raises(PlanError):
            plan_from_json("{not json")
