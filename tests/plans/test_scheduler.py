"""Unit tests for the critical-path clock and the ordered pool."""

import pytest

from repro.plans.scheduler import CriticalPathClock, OrderedPool


class TestCriticalPathClock:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            CriticalPathClock(0)

    def test_empty_schedule(self):
        clock = CriticalPathClock(4)
        report = clock.report()
        assert report.tasks == 0
        assert report.makespan == 0.0
        assert report.speedup == 1.0

    def test_serial_chain_has_no_speedup(self):
        clock = CriticalPathClock(4)
        prev = clock.add_task((), 10.0)
        for _ in range(4):
            prev = clock.add_task((prev,), 10.0)
        report = clock.report()
        assert report.serial_elapsed == 50.0
        assert report.makespan == 50.0
        assert report.speedup == 1.0

    def test_independent_tasks_pack_onto_workers(self):
        clock = CriticalPathClock(2)
        for _ in range(4):
            clock.add_task((), 10.0)
        # 4 x 10 over 2 workers: two rounds of two.
        assert clock.makespan() == 20.0
        assert clock.report().speedup == 2.0

    def test_one_worker_is_serial_sum(self):
        clock = CriticalPathClock(1)
        clock.add_task((), 3.0)
        clock.add_task((), 4.0)
        clock.add_task((0, 1), 5.0)
        assert clock.makespan() == clock.serial_elapsed() == 12.0

    def test_diamond_critical_path(self):
        clock = CriticalPathClock(8)
        top = clock.add_task((), 1.0)
        fast = clock.add_task((top,), 1.0)
        slow = clock.add_task((top,), 10.0)
        clock.add_task((fast, slow), 1.0)
        # 1 + max(1, 10) + 1: the slow branch is the critical path.
        assert clock.makespan() == 12.0

    def test_forward_and_out_of_range_deps_ignored(self):
        clock = CriticalPathClock(2)
        task = clock.add_task((5, -1), 2.0)  # no such tasks yet
        assert task == 0
        assert clock.makespan() == 2.0

    def test_makespan_never_beats_work_bound(self):
        clock = CriticalPathClock(3)
        for i in range(10):
            deps = (i - 1,) if i % 3 == 0 and i else ()
            clock.add_task(deps, float(i + 1))
        report = clock.report()
        assert report.makespan >= report.serial_elapsed / 3
        assert report.makespan <= report.serial_elapsed


class TestOrderedPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            OrderedPool(0)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_in_order(self, workers):
        pool = OrderedPool(workers)
        results = pool.run([lambda i=i: i * i for i in range(10)])
        assert results == [i * i for i in range(10)]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_mutation_order_is_serial(self, workers):
        # The determinism contract: shared state mutates in list
        # order regardless of worker count.
        log = []
        pool = OrderedPool(workers)
        pool.run([lambda i=i: log.append(i) for i in range(20)])
        assert log == list(range(20))

    @pytest.mark.parametrize("workers", [1, 3])
    def test_exception_suppresses_later_thunks(self, workers):
        ran = []

        def make(i):
            def thunk():
                if i == 2:
                    raise RuntimeError("boom")
                ran.append(i)

            return thunk

        pool = OrderedPool(workers)
        with pytest.raises(RuntimeError):
            pool.run([make(i) for i in range(6)])
        assert ran == [0, 1]

    def test_base_exception_propagates(self):
        # The crash injector raises BaseException subclasses; those
        # must cross the pool boundary too.
        class Crash(BaseException):
            pass

        def boom():
            raise Crash()

        pool = OrderedPool(3)
        with pytest.raises(Crash):
            pool.run([lambda: 1, boom, lambda: 3])
