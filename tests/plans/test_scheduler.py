"""Unit tests for the critical-path clock and the ordered pool."""

import pytest

from repro.errors import WorkerError
from repro.plans.scheduler import (
    CriticalPathClock,
    OrderedPool,
    TaskPolicy,
    TaskRuntime,
)


class TestCriticalPathClock:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            CriticalPathClock(0)

    def test_empty_schedule(self):
        clock = CriticalPathClock(4)
        report = clock.report()
        assert report.tasks == 0
        assert report.makespan == 0.0
        assert report.speedup == 1.0

    def test_serial_chain_has_no_speedup(self):
        clock = CriticalPathClock(4)
        prev = clock.add_task((), 10.0)
        for _ in range(4):
            prev = clock.add_task((prev,), 10.0)
        report = clock.report()
        assert report.serial_elapsed == 50.0
        assert report.makespan == 50.0
        assert report.speedup == 1.0

    def test_independent_tasks_pack_onto_workers(self):
        clock = CriticalPathClock(2)
        for _ in range(4):
            clock.add_task((), 10.0)
        # 4 x 10 over 2 workers: two rounds of two.
        assert clock.makespan() == 20.0
        assert clock.report().speedup == 2.0

    def test_one_worker_is_serial_sum(self):
        clock = CriticalPathClock(1)
        clock.add_task((), 3.0)
        clock.add_task((), 4.0)
        clock.add_task((0, 1), 5.0)
        assert clock.makespan() == clock.serial_elapsed() == 12.0

    def test_diamond_critical_path(self):
        clock = CriticalPathClock(8)
        top = clock.add_task((), 1.0)
        fast = clock.add_task((top,), 1.0)
        slow = clock.add_task((top,), 10.0)
        clock.add_task((fast, slow), 1.0)
        # 1 + max(1, 10) + 1: the slow branch is the critical path.
        assert clock.makespan() == 12.0

    def test_forward_and_out_of_range_deps_ignored(self):
        clock = CriticalPathClock(2)
        task = clock.add_task((5, -1), 2.0)  # no such tasks yet
        assert task == 0
        assert clock.makespan() == 2.0

    def test_makespan_never_beats_work_bound(self):
        clock = CriticalPathClock(3)
        for i in range(10):
            deps = (i - 1,) if i % 3 == 0 and i else ()
            clock.add_task(deps, float(i + 1))
        report = clock.report()
        assert report.makespan >= report.serial_elapsed / 3
        assert report.makespan <= report.serial_elapsed


class TestOrderedPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            OrderedPool(0)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_in_order(self, workers):
        pool = OrderedPool(workers)
        results = pool.run([lambda i=i: i * i for i in range(10)])
        assert results == [i * i for i in range(10)]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_mutation_order_is_serial(self, workers):
        # The determinism contract: shared state mutates in list
        # order regardless of worker count.
        log = []
        pool = OrderedPool(workers)
        pool.run([lambda i=i: log.append(i) for i in range(20)])
        assert log == list(range(20))

    @pytest.mark.parametrize("workers", [1, 3])
    def test_exception_suppresses_later_thunks(self, workers):
        ran = []

        def make(i):
            def thunk():
                if i == 2:
                    raise RuntimeError("boom")
                ran.append(i)

            return thunk

        pool = OrderedPool(workers)
        with pytest.raises(RuntimeError):
            pool.run([make(i) for i in range(6)])
        assert ran == [0, 1]

    def test_base_exception_propagates(self):
        # The crash injector raises BaseException subclasses; those
        # must cross the pool boundary too.
        class Crash(BaseException):
            pass

        def boom():
            raise Crash()

        pool = OrderedPool(3)
        with pytest.raises(Crash):
            pool.run([lambda: 1, boom, lambda: 3])


class _StubInjector:
    """Scripted fault source: {(seq, attempt): kind}."""

    def __init__(self, script, slow_factor=4.0):
        self.script = dict(script)
        self.slow_factor = slow_factor

    def draw(self, seq, label, attempt):
        return self.script.get((seq, attempt))


class TestTaskPolicy:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            TaskPolicy(max_attempts=0)

    def test_rejects_nonpositive_timeout_and_hedge(self):
        with pytest.raises(ValueError):
            TaskPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            TaskPolicy(hedge_after=-1.0)

    def test_rejects_bad_breaker_threshold(self):
        with pytest.raises(ValueError):
            TaskPolicy(breaker_threshold=0.0)
        with pytest.raises(ValueError):
            TaskPolicy(breaker_threshold=1.5)

    def test_backoff_doubles_then_caps(self):
        policy = TaskPolicy(base_delay=100.0, max_delay=350.0)
        assert [policy.delay_for(i) for i in range(4)] == [
            100.0, 200.0, 350.0, 350.0,
        ]


def _counting():
    counts = {}

    def count(name, amount=1, **labels):
        key = (name, tuple(sorted(labels.items())))
        counts[key] = counts.get(key, 0) + amount

    return counts, count


class TestTaskRuntime:
    def test_passthrough_without_injector(self):
        runtime = TaskRuntime(OrderedPool(1))
        assert runtime.run([lambda: 5.0, lambda: 7.0]) == [5.0, 7.0]
        assert not runtime.degraded

    def test_crash_retries_with_backoff(self):
        counts, count = _counting()
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(base_delay=100.0),
            injector=_StubInjector({(0, 0): "crash"}),
            count=count,
        )
        calls = []
        modeled = runtime.run([lambda: calls.append(1) or 10.0])
        # Winning attempt ran exactly once; the modeled elapsed folds
        # in the backoff before the retry.
        assert calls == [1]
        assert modeled == [10.0 + 100.0]
        assert counts[("scheduler.task_retries", ())] == 1
        assert counts[("faults.worker_injected", (("kind", "crash"),))] == 1

    def test_lost_result_charges_the_wasted_run(self):
        counts, count = _counting()
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(base_delay=100.0),
            injector=_StubInjector({(0, 0): "lost"}),
            count=count,
        )
        calls = []
        modeled = runtime.run([lambda: calls.append(1) or 10.0])
        # The lost attempt did the work before dropping the result:
        # winning run + one lost run + backoff.  Shared state still
        # saw the work exactly once.
        assert calls == [1]
        assert modeled == [10.0 + 10.0 + 100.0]

    def test_hang_killed_at_timeout_then_retried(self):
        counts, count = _counting()
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(timeout=500.0, base_delay=100.0),
            injector=_StubInjector({(0, 0): "hang"}),
            count=count,
        )
        modeled = runtime.run([lambda: 10.0])
        assert modeled == [10.0 + 500.0 + 100.0]
        assert counts[("scheduler.task_timeouts", ())] == 1

    def test_hang_rescued_by_hedge(self):
        counts, count = _counting()
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(hedge_after=300.0),
            injector=_StubInjector({(0, 0): "hang"}),
            count=count,
        )
        modeled = runtime.run([lambda: 10.0])
        assert modeled == [10.0 + 300.0]
        assert counts[("scheduler.hedges", ())] == 1

    def test_straggler_capped_by_hedge(self):
        counts, count = _counting()
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(hedge_after=15.0),
            injector=_StubInjector({(0, 0): "slow"}, slow_factor=10.0),
            count=count,
        )
        modeled = runtime.run([lambda: 10.0])
        # Unhedged the straggler would take 100; the hedge finishes at
        # hedge_after + one clean run.
        assert modeled == [10.0 + 15.0]
        assert counts[("scheduler.hedges", ())] == 1

    def test_exhausted_budget_degrades_and_reruns(self):
        counts, count = _counting()
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(max_attempts=2, base_delay=100.0),
            injector=_StubInjector(
                {(0, 0): "crash", (0, 1): "crash", (1, 0): "crash"}
            ),
            count=count,
        )
        calls = []
        modeled = runtime.run(
            [lambda: calls.append(0) or 10.0, lambda: calls.append(1) or 20.0]
        )
        # Task 0 exhausts its budget and re-runs serially; task 1's
        # scripted fault is bypassed because the runtime degraded.
        assert calls == [0, 1]
        assert modeled[0] == 10.0 + 100.0
        assert modeled[1] == 20.0
        assert runtime.degraded
        assert runtime.degraded_reasons == ["retry_budget"]
        assert counts[
            ("scheduler.degraded", (("reason", "retry_budget"),))
        ] == 1

    def test_worker_error_when_degradation_disabled(self):
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(max_attempts=1, allow_degrade=False),
            injector=_StubInjector({(0, 0): "crash"}),
        )
        with pytest.raises(WorkerError, match="retry budget exhausted"):
            runtime.run([lambda: 10.0])

    def test_hang_without_timeout_or_hedge_is_unrecoverable(self):
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(allow_degrade=False),
            injector=_StubInjector({(0, 0): "hang"}),
        )
        with pytest.raises(WorkerError, match="no task timeout"):
            runtime.run([lambda: 10.0])

    def test_breaker_trips_on_fault_rate(self):
        counts, count = _counting()
        script = {(i, 0): "crash" for i in range(8)}
        runtime = TaskRuntime(
            OrderedPool(1),
            policy=TaskPolicy(breaker_min_tasks=4, breaker_threshold=0.5),
            injector=_StubInjector(script),
            count=count,
        )
        runtime.run([lambda i=i: float(i) for i in range(8)])
        assert runtime.degraded
        assert "breaker" in runtime.degraded_reasons
        assert counts[("scheduler.degraded", (("reason", "breaker"),))] == 1

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_mutation_order_is_serial_under_faults(self, workers):
        log = []
        runtime = TaskRuntime(
            OrderedPool(workers),
            policy=TaskPolicy(timeout=100.0, hedge_after=50.0),
            injector=_StubInjector(
                {(3, 0): "crash", (7, 0): "hang", (11, 0): "slow",
                 (15, 0): "lost"}
            ),
        )
        runtime.run([lambda i=i: log.append(i) or 1.0 for i in range(20)])
        assert log == list(range(20))
