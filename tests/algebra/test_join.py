"""Unit tests for the product join (Definition 2)."""

import numpy as np
import pytest

from repro.algebra import product_join, quotient_join
from repro.data import FunctionalRelation, complete_relation, var
from repro.errors import SchemaError, SemiringError
from repro.semiring import BOOLEAN, MIN_SUM, SUM_PRODUCT


@pytest.fixture
def abc():
    return var("a", 3), var("b", 4), var("c", 2)


class TestProductJoin:
    def test_matches_nested_loop_oracle(self, abc, rng):
        a, b, c = abc
        s1 = complete_relation([a, b], rng=rng)
        s2 = complete_relation([b, c], rng=rng)
        joined = product_join(s1, s2, SUM_PRODUCT)
        d1, d2 = s1.to_dict(), s2.to_dict()
        expected = {}
        for (av, bv), f1 in d1.items():
            for (bv2, cv), f2 in d2.items():
                if bv == bv2:
                    expected[(av, bv, cv)] = f1 * f2
        assert joined.to_dict() == pytest.approx(expected)

    def test_result_is_functional_relation(self, abc, rng):
        a, b, c = abc
        s1 = complete_relation([a, b], rng=rng)
        s2 = complete_relation([b, c], rng=rng)
        joined = product_join(s1, s2, SUM_PRODUCT)
        keys = joined.key_codes()
        assert len(np.unique(keys)) == joined.ntuples

    def test_sparse_inner_join_semantics(self, abc):
        a, b, c = abc
        s1 = FunctionalRelation.from_rows([a, b], [(0, 0, 2.0), (1, 3, 3.0)])
        s2 = FunctionalRelation.from_rows([b, c], [(0, 1, 5.0)])
        joined = product_join(s1, s2, SUM_PRODUCT)
        assert joined.to_dict() == {(0, 0, 1): 10.0}

    def test_empty_result(self, abc):
        a, b, c = abc
        s1 = FunctionalRelation.from_rows([a, b], [(0, 0, 2.0)])
        s2 = FunctionalRelation.from_rows([b, c], [(1, 1, 5.0)])
        joined = product_join(s1, s2, SUM_PRODUCT)
        assert joined.ntuples == 0
        assert joined.var_names == ("a", "b", "c")

    def test_cross_product_when_disjoint(self, rng):
        s1 = complete_relation([var("a", 3)], rng=rng)
        s2 = complete_relation([var("z", 4)], rng=rng)
        joined = product_join(s1, s2, SUM_PRODUCT)
        assert joined.ntuples == 12

    def test_min_sum_adds_measures(self, abc):
        a, b, _ = abc
        s1 = FunctionalRelation.from_rows([a], [(0, 2.0)])
        s2 = FunctionalRelation.from_rows([a, b], [(0, 1, 5.0)])
        joined = product_join(s1, s2, MIN_SUM)
        assert joined.value_at({"a": 0, "b": 1}) == 7.0

    def test_boolean_join(self, abc):
        a, b, _ = abc
        s1 = FunctionalRelation.from_rows([a], [(0, True), (1, False)])
        s2 = FunctionalRelation.from_rows([a, b], [(0, 0, True), (1, 0, True)])
        joined = product_join(s1, s2, BOOLEAN)
        assert joined.value_at({"a": 0, "b": 0})
        assert not joined.value_at({"a": 1, "b": 0})

    def test_conflicting_domains_rejected(self):
        s1 = complete_relation([var("a", 3)])
        s2 = complete_relation([var("a", 5)])
        with pytest.raises(SchemaError):
            product_join(s1, s2, SUM_PRODUCT)

    def test_join_with_scalar_relation(self, abc, rng):
        a, _, _ = abc
        s1 = complete_relation([a], rng=rng)
        scalar = FunctionalRelation.constant(2.0)
        joined = product_join(s1, scalar, SUM_PRODUCT)
        assert np.allclose(joined.measure, s1.measure * 2.0)

    def test_associativity_up_to_row_order(self, abc, rng):
        a, b, c = abc
        s1 = complete_relation([a, b], rng=rng)
        s2 = complete_relation([b, c], rng=rng)
        s3 = complete_relation([a, c], rng=rng)
        left = product_join(product_join(s1, s2, SUM_PRODUCT), s3, SUM_PRODUCT)
        right = product_join(s1, product_join(s2, s3, SUM_PRODUCT), SUM_PRODUCT)
        assert left.equals(right, SUM_PRODUCT)

    def test_commutativity(self, abc, rng):
        a, b, c = abc
        s1 = complete_relation([a, b], rng=rng)
        s2 = complete_relation([b, c], rng=rng)
        assert product_join(s1, s2, SUM_PRODUCT).equals(
            product_join(s2, s1, SUM_PRODUCT), SUM_PRODUCT
        )


class TestQuotientJoin:
    def test_divides(self, abc):
        a, _, _ = abc
        s1 = FunctionalRelation.from_rows([a], [(0, 6.0)])
        s2 = FunctionalRelation.from_rows([a], [(0, 2.0)])
        out = quotient_join(s1, s2, SUM_PRODUCT)
        assert out.value_at({"a": 0}) == 3.0

    def test_requires_division(self, abc):
        a, _, _ = abc
        s1 = FunctionalRelation.from_rows([a], [(0, True)])
        with pytest.raises(SemiringError):
            quotient_join(s1, s1, BOOLEAN)
