"""Unit tests for selections (restricted answer / constrained domain /
constrained range)."""

import pytest

from repro.algebra import restrict, restrict_range
from repro.data import FunctionalRelation, complete_relation, var
from repro.errors import SchemaError


@pytest.fixture
def rel(rng):
    return complete_relation([var("a", 3), var("b", 4)], rng=rng)


class TestRestrict:
    def test_single_equality(self, rel):
        out = restrict(rel, {"a": 1})
        assert out.ntuples == 4
        assert set(out.columns["a"].tolist()) == {1}

    def test_variable_stays_in_schema(self, rel):
        out = restrict(rel, {"a": 1})
        assert out.var_names == ("a", "b")

    def test_conjunction(self, rel):
        out = restrict(rel, {"a": 1, "b": 2})
        assert out.ntuples == 1

    def test_label_values(self):
        c = var("c", 2, labels=("no", "yes"))
        rel = FunctionalRelation.from_rows([c], [(0, 1.0), (1, 2.0)])
        out = restrict(rel, {"c": "yes"})
        assert out.ntuples == 1
        assert out.measure[0] == 2.0

    def test_unknown_variable(self, rel):
        with pytest.raises(SchemaError):
            restrict(rel, {"zzz": 0})

    def test_empty_selection_matches_all(self, rel):
        assert restrict(rel, {}).ntuples == rel.ntuples

    def test_no_matches(self):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows([a], [(0, 1.0)])
        assert restrict(rel, {"a": 2}).ntuples == 0


class TestRestrictRange:
    def test_less_than(self):
        a = var("a", 4)
        rel = FunctionalRelation.from_rows(
            [a], [(0, 1.0), (1, 5.0), (2, 3.0), (3, 9.0)]
        )
        out = restrict_range(rel, "<", 4.0)
        assert sorted(out.measure.tolist()) == [1.0, 3.0]

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("<", 1), ("<=", 2), (">", 1), (">=", 2), ("=", 1), ("!=", 2),
        ],
    )
    def test_all_operators(self, op, expected):
        a = var("a", 3)
        rel = FunctionalRelation.from_rows(
            [a], [(0, 1.0), (1, 2.0), (2, 3.0)]
        )
        assert restrict_range(rel, op, 2.0).ntuples == expected

    def test_unknown_operator(self):
        a = var("a", 1)
        rel = FunctionalRelation.from_rows([a], [(0, 1.0)])
        with pytest.raises(SchemaError):
            restrict_range(rel, "~", 1.0)
