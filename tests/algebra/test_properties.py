"""Property-based tests of the extended relational algebra.

The GDL's soundness in relational terms: GroupBy distributes over the
product join.  Hypothesis drives random sparse relations over random
small schemas and checks the rewrite identities the optimizers rely on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import marginalize, product_join, restrict
from repro.data import FunctionalRelation, var
from repro.semiring import BOOLEAN, MAX_PRODUCT, MIN_SUM, SUM_PRODUCT

_SEMIRINGS = [SUM_PRODUCT, MIN_SUM, MAX_PRODUCT, BOOLEAN]


@st.composite
def relation_pair(draw):
    """Two sparse relations over domains a, b, c with shared b."""
    sizes = {
        "a": draw(st.integers(1, 4)),
        "b": draw(st.integers(1, 4)),
        "c": draw(st.integers(1, 4)),
    }
    variables = {name: var(name, size) for name, size in sizes.items()}

    def build(var_names):
        total = 1
        for n in var_names:
            total *= sizes[n]
        n_rows = draw(st.integers(1, total))
        flat = draw(
            st.lists(
                st.integers(0, total - 1),
                min_size=n_rows,
                max_size=n_rows,
                unique=True,
            )
        )
        columns = {}
        remaining = np.asarray(flat, dtype=np.int64)
        divisor = total
        for n in var_names:
            divisor //= sizes[n]
            columns[n] = (remaining // divisor) % sizes[n]
        measure = np.asarray(
            draw(
                st.lists(
                    st.floats(0.01, 10.0, allow_nan=False),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            )
        )
        return FunctionalRelation(
            [variables[n] for n in var_names], columns, measure
        )

    return build(["a", "b"]), build(["b", "c"])


@given(relation_pair(), st.sampled_from(range(len(_SEMIRINGS))))
@settings(max_examples=80, deadline=None)
def test_gdl_pushdown_identity(pair, semiring_index):
    """GroupBy_a(s1 ⋈* s2) == GroupBy_a(s1 ⋈* GroupBy_b(s2)).

    The defining rewrite of the GDL: summing c out of s2 before the
    join does not change the final marginal on a (c appears only in
    s2).
    """
    semiring = _SEMIRINGS[semiring_index]
    s1, s2 = pair
    if semiring.dtype.kind == "b":
        s1 = s1.with_measure(s1.measure > 5.0)
        s2 = s2.with_measure(s2.measure > 5.0)
    naive = marginalize(product_join(s1, s2, semiring), ["a"], semiring)
    pushed = marginalize(
        product_join(
            s1, marginalize(s2, ["b"], semiring), semiring
        ),
        ["a"],
        semiring,
    )
    assert naive.equals(pushed, semiring)


@given(relation_pair())
@settings(max_examples=60, deadline=None)
def test_selection_pushdown_identity(pair):
    """σ_{b=0}(s1 ⋈* s2) == σ_{b=0}(s1) ⋈* σ_{b=0}(s2)."""
    s1, s2 = pair
    joined_then_selected = restrict(
        product_join(s1, s2, SUM_PRODUCT), {"b": 0}
    )
    selected_then_joined = product_join(
        restrict(s1, {"b": 0}), restrict(s2, {"b": 0}), SUM_PRODUCT
    )
    assert joined_then_selected.equals(selected_then_joined, SUM_PRODUCT)


@given(relation_pair())
@settings(max_examples=60, deadline=None)
def test_total_mass_factorizes_on_disjoint_split(pair):
    """Total of a product join == product of totals when summing all
    variables out (distributivity at full marginalization)."""
    s1, s2 = pair
    joined = product_join(s1, s2, SUM_PRODUCT)
    total = marginalize(joined, [], SUM_PRODUCT).measure[0]
    # Equivalent formulation through pushed GroupBys.
    m1 = marginalize(s1, ["b"], SUM_PRODUCT)
    m2 = marginalize(s2, ["b"], SUM_PRODUCT)
    expected = marginalize(
        product_join(m1, m2, SUM_PRODUCT), [], SUM_PRODUCT
    ).measure[0]
    assert np.isclose(total, expected, rtol=1e-9)


@given(relation_pair())
@settings(max_examples=40, deadline=None)
def test_marginalize_then_join_keeps_fd(pair):
    s1, s2 = pair
    joined = product_join(
        marginalize(s1, ["b"], SUM_PRODUCT),
        marginalize(s2, ["b"], SUM_PRODUCT),
        SUM_PRODUCT,
    )
    keys = joined.key_codes()
    assert len(np.unique(keys)) == joined.ntuples
