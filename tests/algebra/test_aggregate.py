"""Unit tests for marginalization (Definition 3) and Proposition 1."""

import numpy as np
import pytest

from repro.algebra import marginalize, project_fd, total
from repro.data import FunctionalRelation, complete_relation, var
from repro.errors import FunctionalDependencyError, SchemaError
from repro.semiring import BOOLEAN, MIN_SUM, SUM_PRODUCT


@pytest.fixture
def rel(rng):
    return complete_relation([var("a", 3), var("b", 4), var("c", 2)], rng=rng)


class TestMarginalize:
    def test_sum_out_one_variable(self, rel):
        out = marginalize(rel, ["a", "b"], SUM_PRODUCT)
        for (av, bv), f in out.to_dict().items():
            expected = sum(
                rel.value_at({"a": av, "b": bv, "c": c}) for c in range(2)
            )
            assert f == pytest.approx(expected)

    def test_group_on_all_is_identity(self, rel):
        out = marginalize(rel, ["a", "b", "c"], SUM_PRODUCT)
        assert out.equals(rel, SUM_PRODUCT)

    def test_group_on_none_is_total(self, rel):
        out = marginalize(rel, [], SUM_PRODUCT)
        assert out.arity == 0
        assert out.measure[0] == pytest.approx(rel.measure.sum())
        assert total(rel, SUM_PRODUCT) == pytest.approx(rel.measure.sum())

    def test_nested_grouping_composes(self, rel):
        via_b = marginalize(
            marginalize(rel, ["a", "b"], SUM_PRODUCT), ["a"], SUM_PRODUCT
        )
        direct = marginalize(rel, ["a"], SUM_PRODUCT)
        assert via_b.equals(direct, SUM_PRODUCT)

    def test_order_follows_input_schema(self, rel):
        out = marginalize(rel, ["c", "a"], SUM_PRODUCT)
        # Output variable order is the relation's order restricted to
        # the group set (deterministic regardless of request order).
        assert out.var_names == ("a", "c")

    def test_min_aggregate(self, rel):
        out = marginalize(rel, ["a"], MIN_SUM)
        for (av,), f in out.to_dict().items():
            members = [
                rel.value_at({"a": av, "b": b, "c": c})
                for b in range(4)
                for c in range(2)
            ]
            assert f == pytest.approx(min(members))

    def test_boolean_any(self):
        a, b = var("a", 2), var("b", 2)
        rel = FunctionalRelation.from_rows(
            [a, b],
            [(0, 0, False), (0, 1, True), (1, 0, False), (1, 1, False)],
            dtype=np.bool_,
        )
        out = marginalize(rel, ["a"], BOOLEAN)
        assert out.value_at({"a": 0})
        assert not out.value_at({"a": 1})

    def test_unknown_group_variable(self, rel):
        with pytest.raises(SchemaError):
            marginalize(rel, ["zzz"], SUM_PRODUCT)

    def test_empty_relation(self):
        a = var("a", 3)
        rel = FunctionalRelation([a], {"a": np.array([], dtype=np.int64)},
                                 np.array([]))
        out = marginalize(rel, ["a"], SUM_PRODUCT)
        assert out.ntuples == 0

    def test_sparse_groups_only_present_values(self):
        a, b = var("a", 5), var("b", 2)
        rel = FunctionalRelation.from_rows(
            [a, b], [(0, 0, 1.0), (0, 1, 2.0), (3, 0, 5.0)]
        )
        out = marginalize(rel, ["a"], SUM_PRODUCT)
        assert out.to_dict() == {(0,): 3.0, (3,): 5.0}


class TestProjectFD:
    def test_matches_marginalize_when_fd_holds(self):
        """Proposition 1: GroupBy == projection when the group
        determines the measure."""
        a, b = var("a", 3), var("b", 2)
        # Measure depends only on `a`; FD a -> f holds.
        rel = complete_relation(
            [a, b], measure_fn=lambda cols: cols["a"].astype(float)
        )
        projected = project_fd(rel, ["a"])
        # Compare against min/max aggregation, which are unaffected by
        # duplicates of the same value (sum would multiply by |b|).
        assert projected.equals(marginalize(rel, ["a"], MIN_SUM), MIN_SUM)

    def test_projection_drops_duplicates(self):
        a, b = var("a", 2), var("b", 3)
        rel = complete_relation(
            [a, b], measure_fn=lambda cols: cols["a"] * 10.0
        )
        projected = project_fd(rel, ["a"])
        assert projected.ntuples == 2
        assert projected.value_at({"a": 1}) == 10.0

    def test_raises_when_fd_violated(self):
        """The Proposition-1 precondition is verified, not assumed.

        Two rows in the same group with different measures would be
        silently mis-projected (one arbitrary survivor); the kernel
        must refuse instead.
        """
        a, b = var("a", 2), var("b", 2)
        rel = FunctionalRelation.from_rows(
            [a, b],
            [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 5.0), (1, 1, 5.0)],
        )
        with pytest.raises(FunctionalDependencyError, match="precondition"):
            project_fd(rel, ["a"])
        # The group where the FD *does* hold is not the problem: the
        # error names the violating group a=0.
        with pytest.raises(FunctionalDependencyError, match="'a': 0"):
            project_fd(rel, ["a"])

    def test_duplicate_keys_with_equal_measures_allowed(self):
        a, b = var("a", 2), var("b", 2)
        rel = FunctionalRelation.from_rows(
            [a, b],
            [(0, 0, 3.0), (0, 1, 3.0), (1, 0, 7.0)],
        )
        projected = project_fd(rel, ["a"])
        assert projected.to_dict() == {(0,): 3.0, (1,): 7.0}
