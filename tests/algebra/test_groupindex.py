"""Unit and differential tests for the group-index kernel cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import marginalize, product_join
from repro.algebra.groupindex import (
    DEFAULT_GROUP_INDEX_CACHE,
    GroupIndex,
    GroupIndexCache,
    group_index,
)
from repro.algebra.join import join_match_indices
from repro.data import FunctionalRelation, complete_relation, var
from repro.semiring import ALL_SEMIRINGS, SUM_PRODUCT


def _relation(n_rows=20, seed=0):
    rng = np.random.default_rng(seed)
    a, b = var("a", 4), var("b", 5)
    return FunctionalRelation(
        [a, b],
        {
            "a": rng.integers(0, 4, n_rows).astype(np.int64),
            "b": rng.integers(0, 5, n_rows).astype(np.int64),
        },
        rng.random(n_rows),
        check_fd=False,
    )


class TestGroupIndex:
    def test_matches_np_unique(self):
        rel = _relation()
        keys = rel.key_codes(("a", "b"))
        gidx = GroupIndex(keys)
        uniq, first, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        assert np.array_equal(gidx.unique_keys, uniq)
        assert np.array_equal(gidx.first_idx, first)
        assert np.array_equal(gidx.inverse, inverse.reshape(-1))
        assert gidx.n_groups == len(uniq)

    def test_empty_input(self):
        gidx = GroupIndex(np.empty(0, dtype=np.int64))
        assert gidx.n_groups == 0
        assert len(gidx.order) == 0
        assert gidx.nbytes_elements == 0


class TestGroupIndexCache:
    def test_hit_miss_counters(self):
        cache = GroupIndexCache()
        rel = _relation()
        assert cache.counters() == (0, 0, 0)
        first = group_index(rel, ("a",), cache=cache)
        assert cache.counters() == (0, 1, 0)
        second = group_index(rel, ("a",), cache=cache)
        assert second is first
        assert cache.counters() == (1, 1, 0)
        # A different key-name tuple is a distinct entry.
        group_index(rel, ("a", "b"), cache=cache)
        assert cache.counters() == (1, 2, 0)

    def test_lru_eviction(self):
        cache = GroupIndexCache(capacity=2)
        r1, r2, r3 = _relation(seed=1), _relation(seed=2), _relation(seed=3)
        group_index(r1, ("a",), cache=cache)
        group_index(r2, ("a",), cache=cache)
        # Refresh r1 so r2 is the least recently used.
        group_index(r1, ("a",), cache=cache)
        group_index(r3, ("a",), cache=cache)  # evicts r2
        assert cache.evictions == 1
        assert cache.contains(r1, ("a",))
        assert not cache.contains(r2, ("a",))
        assert cache.contains(r3, ("a",))

    def test_element_budget_eviction(self):
        rel = _relation(n_rows=100)
        entry_size = GroupIndex(rel.key_codes(("a", "b"))).nbytes_elements
        cache = GroupIndexCache(capacity=100, element_budget=entry_size)
        group_index(rel, ("a", "b"), cache=cache)
        assert len(cache) == 1
        other = _relation(n_rows=100, seed=9)
        group_index(other, ("a", "b"), cache=cache)
        # Both entries cannot fit under the budget: the older one left.
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.contains(other, ("a", "b"))

    def test_oversized_entry_not_retained(self):
        cache = GroupIndexCache(element_budget=1)
        rel = _relation()
        gidx = group_index(rel, ("a",), cache=cache)
        assert gidx.n_groups > 0  # still served
        assert len(cache) == 0
        assert cache.evictions == 0

    def test_rebuilt_relation_misses(self):
        """Fingerprints are per-instance: a rebuilt table cannot be
        served the stale index of its predecessor."""
        cache = GroupIndexCache()
        rel = _relation()
        group_index(rel, ("a",), cache=cache)
        rebuilt = FunctionalRelation(
            list(rel.variables),
            {n: rel.columns[n].copy() for n in rel.var_names},
            rel.measure.copy(),
            check_fd=False,
        )
        assert rel.fingerprint != rebuilt.fingerprint
        assert not cache.contains(rebuilt, ("a",))
        group_index(rebuilt, ("a",), cache=cache)
        assert cache.counters() == (0, 2, 0)

    def test_contains_moves_nothing(self):
        cache = GroupIndexCache()
        rel = _relation()
        assert not cache.contains(rel, ("a",))
        group_index(rel, ("a",), cache=cache)
        before = cache.counters()
        assert cache.contains(rel, ("a",))
        assert cache.counters() == before

    def test_clear_resets_everything(self):
        cache = GroupIndexCache(capacity=1)
        group_index(_relation(seed=1), ("a",), cache=cache)
        group_index(_relation(seed=2), ("a",), cache=cache)
        assert cache.counters() == (0, 2, 1)
        cache.clear()
        assert cache.counters() == (0, 0, 0)
        assert len(cache) == 0


@st.composite
def sparse_relation(draw, var_names=("a", "b"), sizes=None):
    sizes = sizes or {n: draw(st.integers(1, 4)) for n in var_names}
    total = 1
    for n in var_names:
        total *= sizes[n]
    n_rows = draw(st.integers(1, total))
    flat = draw(
        st.lists(
            st.integers(0, total - 1),
            min_size=n_rows, max_size=n_rows, unique=True,
        )
    )
    columns = {}
    remaining = np.asarray(flat, dtype=np.int64)
    divisor = total
    for n in var_names:
        divisor //= sizes[n]
        columns[n] = (remaining // divisor) % sizes[n]
    measure = np.asarray(
        draw(
            st.lists(
                st.floats(0.01, 10.0, allow_nan=False),
                min_size=n_rows, max_size=n_rows,
            )
        )
    )
    return FunctionalRelation(
        [var(n, sizes[n]) for n in var_names], columns, measure,
        check_fd=False,
    )


class TestDifferentialByteIdentity:
    """Cached and uncached kernels must agree to the last bit."""

    @given(sparse_relation(), st.sampled_from(range(len(ALL_SEMIRINGS))))
    @settings(max_examples=60, deadline=None)
    def test_marginalize_cached_vs_uncached(self, rel, idx):
        semiring = ALL_SEMIRINGS[idx]
        measure = rel.measure
        if semiring.dtype.kind == "b":
            measure = measure > 5.0
        elif semiring.dtype.kind in "iu":
            measure = (measure * 10).astype(semiring.dtype)
        else:
            measure = measure.astype(semiring.dtype)
        rel = rel.with_measure(measure)

        cache = GroupIndexCache()
        cold = marginalize(rel, ["a"], semiring, cache=cache)
        warm = marginalize(rel, ["a"], semiring, cache=cache)
        # A throwaway cache per call — every lookup is a build.
        uncached = marginalize(
            rel, ["a"], semiring, cache=GroupIndexCache()
        )
        assert cache.hits >= 1
        for out in (warm, uncached):
            assert out.var_names == cold.var_names
            assert np.array_equal(
                out.measure, cold.measure
            ), f"{semiring.name}: cached/uncached measures differ"
            for n in out.var_names:
                assert np.array_equal(out.columns[n], cold.columns[n])

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_join_indices_cached_vs_uncached(self, data):
        # Both sides must agree on the shared variable's domain (as
        # real joins do) — that is the cached probe path's guard.
        b_size = data.draw(st.integers(1, 4))
        left = data.draw(sparse_relation(
            ("a", "b"), sizes={"a": data.draw(st.integers(1, 4)),
                               "b": b_size},
        ))
        right = data.draw(sparse_relation(
            ("b", "c"), sizes={"b": b_size,
                               "c": data.draw(st.integers(1, 4))},
        ))
        cache = GroupIndexCache()
        il_cold, ir_cold = join_match_indices(
            left, right, ("b",), cache=cache
        )
        il_warm, ir_warm = join_match_indices(
            left, right, ("b",), cache=cache
        )
        assert cache.hits >= 1
        assert np.array_equal(il_cold, il_warm)
        assert np.array_equal(ir_cold, ir_warm)
        # And the joined relations themselves agree bit for bit.
        joined = product_join(left, right, SUM_PRODUCT)
        rejoined = product_join(left, right, SUM_PRODUCT)
        assert np.array_equal(joined.measure, rejoined.measure)
        for n in joined.var_names:
            assert np.array_equal(joined.columns[n], rejoined.columns[n])

    def test_marginalize_after_join_reuses_probe_sort(self):
        """A join's probe-side sort is the marginalization's hit."""
        rng = np.random.default_rng(3)
        a, b = var("a", 3), var("b", 4)
        left = complete_relation([a], rng=rng)
        right = complete_relation([a, b], rng=rng)
        cache = GroupIndexCache()
        join_match_indices(left, right, ("a",), cache=cache)
        assert cache.counters() == (0, 1, 0)
        marginalize(right, ["a"], SUM_PRODUCT, cache=cache)
        assert cache.counters() == (1, 1, 0)


class TestDefaultCacheWiring:
    def test_operators_share_the_default_cache(self):
        DEFAULT_GROUP_INDEX_CACHE.clear()
        rel = _relation()
        marginalize(rel, ["a"], SUM_PRODUCT)
        marginalize(rel, ["a"], SUM_PRODUCT)
        hits, misses, evictions = DEFAULT_GROUP_INDEX_CACHE.counters()
        assert (hits, misses, evictions) == (1, 1, 0)
