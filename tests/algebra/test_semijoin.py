"""Unit tests for product / update semijoins (Definition 6)."""

import numpy as np
import pytest

from repro.algebra import (
    marginalize,
    product_join,
    product_semijoin,
    shared_variable_names,
    update_semijoin,
)
from repro.data import FunctionalRelation, complete_relation, var
from repro.errors import SemiringError
from repro.semiring import BOOLEAN, MIN_SUM, SUM_PRODUCT


@pytest.fixture
def pair(rng):
    a, b, c = var("a", 3), var("b", 4), var("c", 2)
    t = complete_relation([a, b], rng=rng, name="t")
    s = complete_relation([b, c], rng=rng, name="s")
    return t, s


class TestProductSemijoin:
    def test_definition(self, pair):
        """t ⋉* s = t ⋈* GroupBy_U(s) with U the shared variables."""
        t, s = pair
        result = product_semijoin(t, s, SUM_PRODUCT)
        message = marginalize(s, ["b"], SUM_PRODUCT)
        expected = product_join(t, message, SUM_PRODUCT)
        assert result.equals(expected, SUM_PRODUCT)

    def test_scope_unchanged(self, pair):
        t, s = pair
        result = product_semijoin(t, s, SUM_PRODUCT)
        assert set(result.var_names) == {"a", "b"}

    def test_shared_variable_names(self, pair):
        t, s = pair
        assert shared_variable_names(t, s) == ("b",)

    def test_min_sum(self, pair):
        t, s = pair
        result = product_semijoin(t, s, MIN_SUM)
        message = marginalize(s, ["b"], MIN_SUM)
        expected = product_join(t, message, MIN_SUM)
        assert result.equals(expected, MIN_SUM)


class TestUpdateSemijoin:
    def test_echo_cancellation(self, pair):
        """Absorb forward then update backward: t's marginal on the
        shared variables becomes s-side-consistent without double
        counting t's own mass."""
        t, s = pair
        # Forward: s absorbs t.
        s_updated = product_semijoin(s, t, SUM_PRODUCT)
        # Backward: t absorbs updated s, dividing out what it sent.
        t_updated = update_semijoin(t, s_updated, SUM_PRODUCT)
        # Both now marginalize to the joint's b-marginal.
        joint = product_join(t, s, SUM_PRODUCT)
        expected = marginalize(joint, ["b"], SUM_PRODUCT)
        got_t = marginalize(t_updated, ["b"], SUM_PRODUCT)
        got_s = marginalize(s_updated, ["b"], SUM_PRODUCT)
        assert got_t.equals(expected, SUM_PRODUCT)
        assert got_s.equals(expected, SUM_PRODUCT)

    def test_idempotent_after_convergence(self, pair):
        t, s = pair
        s1 = product_semijoin(s, t, SUM_PRODUCT)
        t1 = update_semijoin(t, s1, SUM_PRODUCT)
        t2 = update_semijoin(t1, s1, SUM_PRODUCT)
        assert t1.equals(t2, SUM_PRODUCT)

    def test_requires_division(self, pair):
        a = var("a", 2)
        t = FunctionalRelation.from_rows([a], [(0, True)], dtype=np.bool_)
        with pytest.raises(SemiringError):
            update_semijoin(t, t, BOOLEAN)

    def test_min_sum_update(self, pair):
        t, s = pair
        s1 = product_semijoin(s, t, MIN_SUM)
        t1 = update_semijoin(t, s1, MIN_SUM)
        joint = product_join(t, s, MIN_SUM)
        expected = marginalize(joint, ["b"], MIN_SUM)
        got = marginalize(t1, ["b"], MIN_SUM)
        assert got.equals(expected, MIN_SUM)

    def test_zero_mass_rows_stay_zero(self):
        a, b = var("a", 2), var("b", 2)
        t = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0), (1, 1, 2.0)])
        s = FunctionalRelation.from_rows([b], [(0, 3.0)])  # b=1 missing
        s1 = product_semijoin(s, t, SUM_PRODUCT)
        t1 = update_semijoin(t, s1, SUM_PRODUCT)
        # b=1 has no mass on the s side; t's b=1 row joins nothing.
        assert t1.ntuples == 1
        assert t1.value_at({"a": 0, "b": 0}) == pytest.approx(3.0)
