"""Unit tests for the metrics registry and its snapshot algebra."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    base_name,
    metric_key,
)


class TestKeys:
    def test_plain_name(self):
        assert metric_key("queries.total", {}) == "queries.total"

    def test_labels_sorted(self):
        key = metric_key("bp.messages", {"kind": "update", "a": "1"})
        assert key == "bp.messages{a=1,kind=update}"

    def test_base_name_roundtrip(self):
        assert base_name("bp.messages{kind=update}") == "bp.messages"
        assert base_name("queries.total") == "queries.total"


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("queries.total").inc()
        reg.counter("queries.total").inc(4)
        assert reg.snapshot().get("queries.total") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("queries.total").inc(-1)

    def test_labels_split_instruments(self):
        reg = MetricsRegistry()
        reg.counter("queries.total", status="ok").inc(2)
        reg.counter("queries.total", status="error").inc()
        snap = reg.snapshot()
        assert snap.get("queries.total", status="ok") == 2
        assert snap.get("queries.total", status="error") == 1
        assert snap.get("queries.total") == 0  # unlabeled never written

    def test_gauge_is_last_write(self):
        reg = MetricsRegistry()
        g = reg.gauge("vecache.tables")
        g.set(7)
        g.set(3)
        g.inc()
        assert reg.snapshot().get("vecache.tables") == 4

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("query.operator_elapsed", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 5.0, 100.0):
            h.observe(v)
        dump = reg.snapshot().to_dict()["query.operator_elapsed"]
        assert dump["count"] == 4
        assert dump["sum"] == pytest.approx(110.5)
        assert dump["bounds"] == [1.0, 10.0]
        assert dump["counts"] == [1, 2, 1]

    def test_histogram_bounds_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("query.operator_elapsed", buckets=(10.0, 1.0))

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("queries.total")
        with pytest.raises(ValueError):
            reg.gauge("queries.total")
        with pytest.raises(ValueError):
            reg.histogram("queries.total")

    def test_scalar_get_rejects_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("query.operator_elapsed").observe(1.0)
        with pytest.raises(ValueError):
            reg.snapshot().get("query.operator_elapsed")


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("query.page_reads").inc(10)
    reg.counter("bp.messages", kind="product").inc(3)
    reg.gauge("vecache.tables").set(4)
    h = reg.histogram("query.operator_elapsed", buckets=DEFAULT_BUCKETS)
    h.observe(5.0)
    h.observe(5e6)
    return reg


class TestSnapshotAlgebra:
    def test_snapshot_is_detached(self):
        reg = _sample_registry()
        before = reg.snapshot()
        reg.counter("query.page_reads").inc(100)
        assert before.get("query.page_reads") == 10

    def test_json_is_sorted_and_stable(self):
        snap = _sample_registry().snapshot()
        text = snap.to_json()
        assert text == snap.to_json()
        assert json.loads(text) == snap.to_dict()
        assert list(snap.to_dict()) == sorted(snap.to_dict())

    def test_diff_counters_subtract(self):
        reg = _sample_registry()
        before = reg.snapshot()
        reg.counter("query.page_reads").inc(7)
        delta = reg.snapshot().diff(before)
        assert delta.get("query.page_reads") == 7
        assert delta.get("bp.messages", kind="product") == 0

    def test_diff_gauges_keep_self(self):
        reg = _sample_registry()
        before = reg.snapshot()
        reg.gauge("vecache.tables").set(9)
        assert reg.snapshot().diff(before).get("vecache.tables") == 9

    def test_diff_histograms_subtract(self):
        reg = _sample_registry()
        before = reg.snapshot()
        reg.histogram("query.operator_elapsed").observe(5.0)
        dump = reg.snapshot().diff(before).to_dict()[
            "query.operator_elapsed"
        ]
        assert dump["count"] == 1
        assert dump["sum"] == pytest.approx(5.0)
        assert sum(dump["counts"]) == 1

    def test_diff_of_new_entry_counts_from_zero(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("queries.total").inc(2)
        assert reg.snapshot().diff(before).get("queries.total") == 2

    def test_merge_adds_counters_and_histograms(self):
        a = _sample_registry().snapshot()
        b = _sample_registry().snapshot()
        merged = a.merge(b)
        assert merged.get("query.page_reads") == 20
        dump = merged.to_dict()["query.operator_elapsed"]
        assert dump["count"] == 4
        assert dump["sum"] == pytest.approx(2 * (5.0 + 5e6))

    def test_merge_gauges_left_biased(self):
        a = MetricsRegistry()
        a.gauge("vecache.tables").set(1)
        b = MetricsRegistry()
        b.gauge("vecache.tables").set(2)
        assert a.snapshot().merge(b.snapshot()).get("vecache.tables") == 1
        assert b.snapshot().merge(a.snapshot()).get("vecache.tables") == 2

    def test_roundtrip_law(self):
        """``b.diff(a).merge(a) == b`` for counters, gauges, histograms."""
        reg = _sample_registry()
        a = reg.snapshot()
        reg.counter("query.page_reads").inc(5)
        reg.counter("queries.total").inc()  # appears only in b
        reg.gauge("vecache.tables").set(11)
        reg.histogram("query.operator_elapsed").observe(2.0)
        b = reg.snapshot()
        assert b.diff(a).merge(a) == b

    def test_incompatible_kinds_refuse_algebra(self):
        a = MetricsSnapshot({"m": {"kind": "counter", "value": 1}})
        b = MetricsSnapshot({"m": {"kind": "gauge", "value": 1}})
        with pytest.raises(ValueError):
            a.diff(b)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_mismatched_histogram_bounds_refuse_merge(self):
        def snap(bounds):
            reg = MetricsRegistry()
            reg.histogram("h", buckets=bounds).observe(1.0)
            return reg.snapshot()

        with pytest.raises(ValueError):
            snap((1.0, 2.0)).merge(snap((1.0, 3.0)))
