"""Tests for the per-tenant sliding-window SLO telemetry."""

import pytest

from repro.obs import MetricsRegistry, SlidingDigest, SLOMonitor, quantile


class TestQuantile:
    def test_nearest_rank_is_exact(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert quantile(values, 0.50) == 3.0
        assert quantile(values, 0.95) == 5.0
        assert quantile(values, 0.99) == 5.0
        assert quantile(values, 1.00) == 5.0
        assert quantile(values, 0.20) == 1.0

    def test_empty_window_is_zero(self):
        assert quantile([], 0.99) == 0.0

    def test_single_sample(self):
        assert quantile([7.5], 0.50) == 7.5

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.5])
    def test_fraction_out_of_range(self, q):
        with pytest.raises(ValueError, match="out of range"):
            quantile([1.0], q)

    def test_no_interpolation(self):
        # Nearest rank returns an observed value, never a midpoint.
        assert quantile([1.0, 2.0], 0.50) == 1.0
        assert quantile([1.0, 2.0], 0.75) == 2.0


class TestSlidingDigest:
    def test_window_evicts_oldest(self):
        digest = SlidingDigest(window=3)
        for v in (10.0, 20.0, 30.0, 40.0):
            digest.observe(v)
        assert len(digest) == 3
        assert digest.count == 4          # lifetime, not window
        assert digest.quantile(0.50) == 30.0
        assert digest.quantile(1.00) == 40.0

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError, match="window"):
            SlidingDigest(window=0)


class _Spec:
    def __init__(self, name, slo=None, slo_objective=0.99):
        self.name = name
        self.slo = slo
        self.slo_objective = slo_objective


class TestSLOMonitor:
    def test_attainment_counts_only_within_slo_completions(self):
        mon = SLOMonitor([_Spec("gold", slo=100.0)])
        mon.record("gold", "ok", latency=50.0, queue_wait=1.0)
        mon.record("gold", "ok", latency=150.0, queue_wait=2.0)  # blown
        mon.record("gold", "shed")
        mon.record("gold", "error")
        (row,) = mon.rows()
        assert row["ok"] == 2 and row["shed"] == 1 and row["errors"] == 1
        assert row["attainment"] == 0.25

    def test_tenant_without_slo_counts_completions_as_good(self):
        mon = SLOMonitor([_Spec("bulk")])
        mon.record("bulk", "ok", latency=1e9)
        mon.record("bulk", "shed")
        (row,) = mon.rows()
        assert row["attainment"] == 0.5

    def test_empty_window_attains_fully(self):
        mon = SLOMonitor([_Spec("idle", slo=1.0)])
        (row,) = mon.rows()
        assert row["attainment"] == 1.0
        assert row["burn_rate"] == 0.0

    def test_burn_rate_is_budget_relative(self):
        # 50% attainment against a 90% objective burns 5x budget.
        mon = SLOMonitor([_Spec("gold", slo=100.0, slo_objective=0.9)])
        mon.record("gold", "ok", latency=50.0)
        mon.record("gold", "shed")
        (row,) = mon.rows()
        assert row["burn_rate"] == pytest.approx(5.0)

    def test_gauges_published_per_tenant(self):
        reg = MetricsRegistry()
        mon = SLOMonitor([_Spec("gold", slo=100.0)], metrics=reg)
        for latency in (10.0, 20.0, 30.0):
            mon.record("gold", "ok", latency=latency, queue_wait=latency)
        snap = reg.snapshot().to_dict()
        assert snap["serve.slo_latency_p50{tenant=gold}"]["value"] == 20.0
        assert snap["serve.slo_latency_p99{tenant=gold}"]["value"] == 30.0
        assert snap["serve.slo_queue_wait_p95{tenant=gold}"]["value"] == 30.0
        assert snap["serve.slo_attainment{tenant=gold}"]["value"] == 1.0
        assert snap["serve.slo_burn_rate{tenant=gold}"]["value"] == 0.0

    def test_unknown_tenant_registered_lazily(self):
        mon = SLOMonitor()
        mon.record("walkin", "ok", latency=5.0)
        (row,) = mon.rows()
        assert row["tenant"] == "walkin"
        assert row["slo"] is None

    def test_rows_sorted_and_render_covers_all_tenants(self):
        mon = SLOMonitor([_Spec("gold", slo=10.0), _Spec("bulk")])
        mon.record("gold", "ok", latency=5.0, queue_wait=1.0)
        mon.record("bulk", "shed")
        assert [r["tenant"] for r in mon.rows()] == ["bulk", "gold"]
        table = mon.render()
        assert "TENANT" in table
        assert "gold" in table and "bulk" in table
        assert "BURN" in table

    def test_sliding_window_forgets_old_failures(self):
        mon = SLOMonitor([_Spec("gold", slo=100.0)], window=2)
        mon.record("gold", "shed")
        mon.record("gold", "ok", latency=1.0)
        mon.record("gold", "ok", latency=2.0)
        (row,) = mon.rows()
        # The shed fell out of the 2-wide window.
        assert row["attainment"] == 1.0
