"""Two identical seeded runs must produce byte-identical metrics.

Everything the registry records runs on the simulated cost clock and
seeded randomness (data generation, fault injection), so the full
flat-JSON snapshot — counter values, gauge values, histogram bucket
counts — is a pure function of the seed.  Wall-clock quantities (the
optimizer's ``planning_seconds``) are deliberately kept out of the
registry; this test is the tripwire for anyone wiring one in.
"""

import numpy as np

from repro.data import complete_relation, var
from repro.engine import Database
from repro.obs import validate_metrics_document
from repro.plans import QueryGuard
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage import BufferPool, FaultInjector, PageId


def _seeded_run() -> Database:
    """One full engine workout, everything derived from fixed seeds."""
    rng = np.random.default_rng(991)
    a, b, c = var("a", 6), var("b", 5), var("c", 4)
    relations = [
        complete_relation([a, b], rng=rng, name="s1"),
        complete_relation([b, c], rng=rng, name="s2"),
    ]
    injector = FaultInjector(seed=17)
    db = Database(pool=BufferPool(injector=injector))
    for rel in relations:
        db.register(rel)
    db.create_view("v", ("s1", "s2"))

    def query(*group_by, **selections):
        view = MPFView("v", ("s1", "s2"), SUM_PRODUCT)
        return MPFQuery(view, group_by, selections=selections)

    heapfile = db.catalog.heapfile("s1")
    for page_no in range(heapfile.n_pages):
        injector.fail_page(PageId(heapfile.file_id, page_no), times=1)

    db.run_query(query("a"), guard=QueryGuard(retry_budget=1000))
    db.run_query(query("c", a=2), use_plan_cache=True)
    db.run_query(query("c", a=2), use_plan_cache=True)
    db.run_batch([query("b"), query("b"), query("a", b=0)])
    return db


class TestSeededDeterminism:
    def test_identical_runs_identical_snapshots(self):
        first, second = _seeded_run(), _seeded_run()
        assert first.metrics_snapshot().to_json() == (
            second.metrics_snapshot().to_json()
        )

    def test_document_is_schema_valid_and_stable(self):
        import json

        docs = [
            _seeded_run().metrics_document(name="determinism")
            for _ in range(2)
        ]
        for doc in docs:
            validate_metrics_document(doc)
        assert json.dumps(docs[0], sort_keys=True) == (
            json.dumps(docs[1], sort_keys=True)
        )

    def test_run_actually_exercised_the_engine(self):
        snap = _seeded_run().metrics_snapshot()
        assert snap.get("query.retries") > 0
        assert snap.get("plan_cache.hits") == 1
        assert snap.get("query.memo_hits") > 0
        # Three standalone queries plus the three batch members.
        assert snap.get("queries.total", status="ok") == 6

    def test_pure_serial_run_emits_no_scheduler_gauges(self):
        # workers=1 with no partitioned tables never takes the
        # scheduled path: a zero-makespan schedule must not pollute
        # snapshot diffs with meaningless gauges.
        snap = _seeded_run().metrics_snapshot().to_dict()
        assert not any(k.startswith("scheduler.") for k in snap)

    def test_scheduled_run_does_emit_scheduler_gauges(self):
        rng = np.random.default_rng(991)
        a, b, c = var("a", 6), var("b", 5), var("c", 4)
        db = Database(workers=2)
        db.register(complete_relation([a, b], rng=rng, name="s1"))
        db.register(complete_relation([b, c], rng=rng, name="s2"))
        db.catalog.partition_table("s1", "b", 2)
        db.create_view("v", ("s1", "s2"))
        view = MPFView("v", ("s1", "s2"), SUM_PRODUCT)
        db.run_batch([MPFQuery(view, ("a",))])
        snap = db.metrics_snapshot().to_dict()
        assert "scheduler.makespan" in snap
        assert "scheduler.workers" in snap
