"""Tests for cost-model calibration: the estimate→actual join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog
from repro.data import FunctionalRelation, complete_relation, var
from repro.obs import MetricsRegistry
from repro.obs.calib import (
    MISESTIMATE_THRESHOLD,
    CandidateReplay,
    PlanAudit,
    calibrate_plan,
    q_error,
)
from repro.obs.validate import validate_document
from repro.plans import GroupBy, ProductJoin, Scan, Select, profile_execution
from repro.plans.annotate import annotate
from repro.semiring import SUM_PRODUCT


class TestQError:
    def test_exact(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric(self):
        assert q_error(10, 40) == q_error(40, 10) == 4.0

    def test_floored_at_one_row(self):
        # An estimate of 0.2 for an empty actual is not an error.
        assert q_error(0.2, 0) == 1.0
        assert q_error(0.5, 2) == 2.0


@pytest.fixture
def exact_setting(rng):
    """Two complete relations: every estimator rule is exact."""
    cat = Catalog()
    cat.register(complete_relation([var("a", 6), var("b", 5)], rng=rng,
                                   name="s1"))
    cat.register(complete_relation([var("b", 5), var("c", 4)], rng=rng,
                                   name="s2"))
    plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
    return cat, plan


def run_calibrated(plan, cat):
    annotate(plan, cat)
    profile = profile_execution(plan, cat, SUM_PRODUCT)
    return calibrate_plan(plan, profile.operators,
                          stats_epoch=cat.stats_epoch)


class TestCalibratePlan:
    def test_exact_stats_give_unit_q_error(self, exact_setting):
        cat, plan = exact_setting
        calib = run_calibrated(plan, cat)
        assert calib.plan_q_error == 1.0
        assert calib.mean_q_error == 1.0
        assert calib.dominant is None
        assert all(n.source == "exact" for n in calib.nodes)
        assert all(n.q_error == 1.0 for n in calib.nodes)

    def test_one_row_per_unique_node_children_first(self, exact_setting):
        cat, plan = exact_setting
        calib = run_calibrated(plan, cat)
        assert len(calib.nodes) == plan.count_nodes()
        assert calib.nodes[-1].op == "group_by"  # root last
        keys = [n.key for n in calib.nodes]
        assert len(set(keys)) == len(keys)

    def test_lookup_by_structural_key(self, exact_setting):
        cat, plan = exact_setting
        calib = run_calibrated(plan, cat)
        row = calib.lookup(plan.structural_key())
        assert row is not None and row.op == "group_by"
        assert calib.lookup(("no", "such", "key")) is None

    def test_accepts_actuals_mapping(self, exact_setting):
        cat, plan = exact_setting
        annotate(plan, cat)
        actuals = {
            node.structural_key(): (int(node.stats.cardinality), 7.0)
            for node in plan.walk()
        }
        calib = calibrate_plan(plan, actuals)
        assert calib.plan_q_error == 1.0
        assert all(n.actual_elapsed == 7.0 for n in calib.nodes)

    def test_unexecuted_node_has_no_q_error(self, exact_setting):
        cat, plan = exact_setting
        annotate(plan, cat)
        calib = calibrate_plan(plan, {})
        assert all(n.q_error is None and n.source is None
                   for n in calib.nodes)
        assert calib.plan_q_error == 1.0  # vacuous


@pytest.fixture
def skewed_setting(rng):
    """A selection whose uniformity assumption is badly wrong.

    In s1, b=0 appears with every a value while every other b value
    appears only once — so the uniform estimate |s1|/d(b) for the
    selection is ~2 rows against an actual of n.
    """
    n = 8
    a, b, c = var("a", n), var("b", n), var("c", n)
    rows = [(i, 0, 1.0) for i in range(n)]
    rows += [(0, j, 1.0) for j in range(1, n)]
    cat = Catalog()
    cat.register(FunctionalRelation.from_rows([a, b], rows, name="s1"))
    cat.register(complete_relation([b, c], rng=rng, name="s2"))
    plan = GroupBy(
        ProductJoin(
            Select(Scan("s1"), {"b": 0}),
            Select(Scan("s2"), {"b": 0}),
        ),
        ["c"],
    )
    return cat, plan


class TestAttribution:
    def test_selection_misestimate_is_blamed_on_the_selection(
        self, skewed_setting
    ):
        cat, plan = skewed_setting
        calib = run_calibrated(plan, cat)
        assert calib.plan_q_error > MISESTIMATE_THRESHOLD
        dominant = calib.dominant
        assert dominant.op == "select"
        assert dominant.source == "selection"
        assert calib.misestimates  # crossed the 2x line

    def test_scans_stay_exact_under_the_misestimate(self, skewed_setting):
        cat, plan = skewed_setting
        calib = run_calibrated(plan, cat)
        for node in calib.nodes:
            if node.op == "scan":
                assert node.source == "exact"

    def test_downstream_error_is_inherited_not_own(self, skewed_setting):
        cat, plan = skewed_setting
        calib = run_calibrated(plan, cat)
        join = next(n for n in calib.nodes if n.op == "product_join")
        # The join's error comes from its selection input; it must not
        # be blamed on join selectivity.
        assert join.source in ("inherited", "exact")


class TestPublish:
    def test_metrics_published(self, skewed_setting):
        cat, plan = skewed_setting
        calib = run_calibrated(plan, cat)
        reg = MetricsRegistry()
        calib.publish(reg)
        snap = reg.snapshot()
        assert snap.get("calib.runs") == 1
        assert snap.get("calib.misestimates", source="selection") >= 1

    def test_q_error_histogram_labeled_by_operator(self, exact_setting):
        cat, plan = exact_setting
        calib = run_calibrated(plan, cat)
        reg = MetricsRegistry()
        calib.publish(reg)
        entry = reg.snapshot().to_dict()["calib.q_error{operator=scan}"]
        assert entry["kind"] == "histogram"
        assert entry["count"] == 2

    def test_none_registry_is_a_noop(self, exact_setting):
        cat, plan = exact_setting
        calib = run_calibrated(plan, cat)
        calib.publish(None)


class TestCalibrationDocument:
    def test_document_validates(self, skewed_setting):
        cat, plan = skewed_setting
        calib = run_calibrated(plan, cat)
        audit = PlanAudit(candidates=[
            CandidateReplay("ve+", 100.0, 50.0, chosen=True),
            CandidateReplay("cs", 120.0, 40.0, chosen=False),
        ])
        doc = calib.document(query="q", algorithm="ve+", audit=audit)
        assert validate_document(doc) == "repro.calibration.v1"
        assert doc["audit"]["plan_regret"] == pytest.approx(1.25)

    def test_validator_rejects_bad_q_error(self, exact_setting):
        cat, plan = exact_setting
        doc = run_calibrated(plan, cat).document()
        doc["nodes"][0]["q_error"] = 0.5
        with pytest.raises(ValueError, match="q_error"):
            validate_document(doc)

    def test_validator_rejects_unknown_source(self, exact_setting):
        cat, plan = exact_setting
        doc = run_calibrated(plan, cat).document()
        doc["nodes"][0]["source"] = "gremlins"
        with pytest.raises(ValueError, match="source"):
            validate_document(doc)

    def test_validator_rejects_missing_keys(self, exact_setting):
        cat, plan = exact_setting
        doc = run_calibrated(plan, cat).document()
        del doc["plan_q_error"]
        with pytest.raises(ValueError, match="missing"):
            validate_document(doc)


class TestPlanAudit:
    def test_regret_is_chosen_over_best(self):
        audit = PlanAudit(candidates=[
            CandidateReplay("ve+", 10.0, 200.0, chosen=True),
            CandidateReplay("cs", 12.0, 100.0, chosen=False),
        ])
        assert audit.plan_regret == 2.0
        assert audit.best.algorithm == "cs"
        assert audit.chosen.algorithm == "ve+"

    def test_regret_one_when_chosen_is_best(self):
        audit = PlanAudit(candidates=[
            CandidateReplay("ve+", 10.0, 100.0, chosen=True),
            CandidateReplay("cs", 12.0, 150.0, chosen=False),
        ])
        assert audit.plan_regret == 1.0

    def test_publish(self):
        audit = PlanAudit(candidates=[
            CandidateReplay("ve+", 10.0, 100.0, chosen=True),
            CandidateReplay("cs", 12.0, 150.0, chosen=False),
        ])
        reg = MetricsRegistry()
        audit.publish(reg)
        assert reg.snapshot().get("calib.plans_replayed") == 2


class TestCalibrationProperty:
    """Full product joins over exact statistics calibrate to q ≡ 1.0.

    Complete relations make every estimator rule exact (containment
    holds with equality, group-by collapse hits the distinct product),
    so with fresh statistics and no selections the whole plan must
    calibrate to Q-error exactly 1.0 — the property the acceptance
    criterion pins.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=2, max_value=5),
                       min_size=3, max_size=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_complete_chain_calibrates_exactly(self, sizes, seed):
        rng = np.random.default_rng(seed)
        names = [f"v{i}" for i in range(len(sizes))]
        variables = [var(n, s) for n, s in zip(names, sizes)]
        cat = Catalog()
        plan = None
        for i in range(len(sizes) - 1):
            rel = complete_relation(
                [variables[i], variables[i + 1]], rng=rng, name=f"t{i}"
            )
            cat.register(rel)
            scan = Scan(f"t{i}")
            plan = scan if plan is None else ProductJoin(plan, scan)
        plan = GroupBy(plan, [names[0]])
        calib = run_calibrated(plan, cat)
        assert calib.plan_q_error == 1.0
        assert all(n.q_error == 1.0 for n in calib.nodes)
        assert all(n.source == "exact" for n in calib.nodes)
