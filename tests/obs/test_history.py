"""Tests for the benchmark-history store and its regression gate."""

import copy
import json

import pytest

from repro.obs import MetricsRegistry, bench_document
from repro.obs.history import (
    check_history,
    current_git_sha,
    diff_runs,
    flatten_metrics,
    history_path,
    ingest_document,
    load_history,
    main,
    validate_history_document,
)
from repro.obs.validate import validate_document


def make_doc(elapsed=100.0, reads=10, verdict="yes", runs=1):
    reg = MetricsRegistry()
    reg.counter("bench.queries").inc(runs)
    reg.histogram("bench.latency").observe(elapsed)
    return bench_document(
        "gate_demo",
        "A gated demo table",
        ["query", "sim_elapsed", "page_reads", "eq1"],
        [["q1", elapsed, reads, verdict], ["q2", elapsed * 2, reads, verdict]],
        metrics=reg,
        git_sha="feedc0ffee00" + "0" * 28,
        suite="gate_demo",
    )


class TestIngest:
    def test_first_ingest_creates_baseline(self, tmp_path):
        path = ingest_document(make_doc(), history_dir=tmp_path)
        assert path == history_path("gate_demo", tmp_path)
        history = load_history(path)
        assert validate_document(history) == "repro.bench_history.v1"
        assert len(history["runs"]) == 1
        run = history["runs"][0]
        assert run["run_id"] == "feedc0ffee00-1"
        assert run["metrics_delta"] is None
        assert run["metrics"]["bench.queries"] == 1

    def test_second_ingest_appends_with_delta(self, tmp_path):
        ingest_document(make_doc(runs=1), history_dir=tmp_path)
        path = ingest_document(make_doc(runs=4), history_dir=tmp_path)
        history = load_history(path)
        assert len(history["runs"]) == 2
        assert history["runs"][1]["run_id"].endswith("-2")
        assert history["runs"][1]["metrics_delta"]["bench.queries"] == 3

    def test_changed_columns_are_rejected(self, tmp_path):
        ingest_document(make_doc(), history_dir=tmp_path)
        doc = make_doc()
        doc["columns"] = ["other"]
        doc["rows"] = [["x"]]
        with pytest.raises(ValueError, match="columns changed"):
            ingest_document(doc, history_dir=tmp_path)

    def test_histograms_flatten_to_count_and_sum(self):
        flat = flatten_metrics(make_doc()["metrics"])
        assert flat["bench.latency.count"] == 1
        assert flat["bench.latency.sum"] == 100.0
        assert flat["bench.queries"] == 1


class TestGate:
    def test_single_run_passes(self, tmp_path):
        ingest_document(make_doc(), history_dir=tmp_path)
        assert check_history(tmp_path) == []

    def test_drift_within_tolerance_passes(self, tmp_path):
        ingest_document(make_doc(elapsed=100.0), history_dir=tmp_path)
        ingest_document(make_doc(elapsed=110.0), history_dir=tmp_path)
        assert check_history(tmp_path) == []

    def test_elapsed_drift_beyond_tolerance_fails(self, tmp_path):
        ingest_document(make_doc(elapsed=100.0), history_dir=tmp_path)
        ingest_document(make_doc(elapsed=200.0), history_dir=tmp_path)
        problems = check_history(tmp_path)
        assert any("sim_elapsed" in p for p in problems)

    def test_page_metric_drift_fails(self, tmp_path):
        ingest_document(make_doc(reads=10), history_dir=tmp_path)
        ingest_document(make_doc(reads=20), history_dir=tmp_path)
        problems = check_history(tmp_path)
        assert any("page_reads" in p for p in problems)

    def test_non_numeric_cells_must_match_exactly(self, tmp_path):
        ingest_document(make_doc(verdict="yes"), history_dir=tmp_path)
        ingest_document(make_doc(verdict="no"), history_dir=tmp_path)
        problems = check_history(tmp_path)
        assert any("'yes' -> 'no'" in p for p in problems)

    def test_row_count_change_fails(self, tmp_path):
        ingest_document(make_doc(), history_dir=tmp_path)
        doc = make_doc()
        doc["rows"] = doc["rows"][:1]
        ingest_document(doc, history_dir=tmp_path)
        problems = check_history(tmp_path)
        assert any("row count" in p for p in problems)

    def test_per_column_tolerance_override(self, tmp_path):
        ingest_document(make_doc(elapsed=100.0), history_dir=tmp_path)
        ingest_document(make_doc(elapsed=200.0), history_dir=tmp_path)
        problems = check_history(
            tmp_path,
            column_tolerance={
                "sim_elapsed": 2.0,
                "bench.latency.sum": 2.0,
            },
        )
        assert problems == []

    def test_disappeared_metric_fails(self, tmp_path):
        ingest_document(make_doc(), history_dir=tmp_path)
        doc = make_doc()
        doc["metrics"]["metrics"].pop("bench.queries")
        ingest_document(doc, history_dir=tmp_path)
        problems = check_history(tmp_path)
        assert any("disappeared" in p for p in problems)


class TestValidation:
    def test_rejects_baseline_with_delta(self, tmp_path):
        path = ingest_document(make_doc(), history_dir=tmp_path)
        history = json.loads(path.read_text())
        history["runs"][0]["metrics_delta"] = {"x": 1}
        with pytest.raises(ValueError, match="baseline"):
            validate_history_document(history)

    def test_rejects_unknown_keys(self, tmp_path):
        path = ingest_document(make_doc(), history_dir=tmp_path)
        history = json.loads(path.read_text())
        history["extra"] = True
        with pytest.raises(ValueError, match="unknown keys"):
            validate_history_document(history)

    def test_diff_runs_needs_no_file(self, tmp_path):
        path = ingest_document(make_doc(), history_dir=tmp_path)
        ingest_document(make_doc(elapsed=180.0), history_dir=tmp_path)
        history = load_history(path)
        problems = diff_runs(history)
        assert problems and all(p.startswith("gate_demo") for p in problems)


class TestGitSha:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe" * 10)
        assert current_git_sha() == "cafe" * 10

    def test_repo_head_or_unknown(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        # Outside any repository the fallback must be "unknown".
        sha = current_git_sha(tmp_path)
        assert sha == "unknown" or len(sha) == 40


class TestCLI:
    def _write_out_dir(self, tmp_path, **kwargs):
        out = tmp_path / "out"
        out.mkdir()
        (out / "gate_demo.json").write_text(
            json.dumps(make_doc(**kwargs), default=float)
        )
        return out

    def test_ingest_then_check_ok(self, tmp_path, capsys):
        out = self._write_out_dir(tmp_path)
        assert main([
            "ingest", "--out-dir", str(out),
            "--history-dir", str(tmp_path),
        ]) == 0
        assert main(["check", "--history-dir", str(tmp_path)]) == 0
        assert "passed" in capsys.readouterr().out

    def test_check_exits_nonzero_on_perturbed_metric(self, tmp_path, capsys):
        ingest_document(make_doc(), history_dir=tmp_path)
        # Perturb the stored baseline's elapsed cell beyond tolerance
        # and append it as a fresh "run".
        path = history_path("gate_demo", tmp_path)
        history = json.loads(path.read_text())
        run = copy.deepcopy(history["runs"][0])
        run["run_id"] = "perturbed-2"
        run["rows"][0][1] *= 10
        run["metrics_delta"] = {}
        history["runs"].append(run)
        path.write_text(json.dumps(history))
        assert main(["check", "--history-dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_tolerance_flag(self, tmp_path):
        ingest_document(make_doc(elapsed=100.0), history_dir=tmp_path)
        ingest_document(make_doc(elapsed=130.0), history_dir=tmp_path)
        assert main(["check", "--history-dir", str(tmp_path)]) == 1
        assert main([
            "check", "--history-dir", str(tmp_path),
            "--tolerance", "0.5",
            "--column", "bench.latency.sum=0.5",
        ]) == 0

    def test_ingest_empty_dir_fails(self, tmp_path, capsys):
        out = tmp_path / "out"
        out.mkdir()
        assert main([
            "ingest", "--out-dir", str(out),
            "--history-dir", str(tmp_path),
        ]) == 1

    def test_diff_reports_deltas(self, tmp_path, capsys):
        ingest_document(make_doc(runs=1), history_dir=tmp_path)
        ingest_document(make_doc(runs=4), history_dir=tmp_path)
        assert main(["diff", "--history-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "delta bench.queries +3" in out
