"""Tests for the span-based query tracer."""

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.obs import QueryTracer
from repro.plans import GroupBy, ProductJoin, Scan, lower
from repro.plans.runtime import ExecutionContext, evaluate_dag
from repro.semiring import SUM_PRODUCT
from repro.storage.iostats import IOStats


@pytest.fixture
def setting(rng):
    cat = Catalog()
    cat.register(complete_relation([var("a", 6), var("b", 5)], rng=rng,
                                   name="s1"))
    cat.register(complete_relation([var("b", 5), var("c", 4)], rng=rng,
                                   name="s2"))
    plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
    return cat, plan


class TestSpans:
    def test_nesting_and_cost_clock(self, setting):
        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        with tracer.span("optimize", algorithm="ve+"):
            pass
        with tracer.span("execute"):
            evaluate_dag(lower(plan), ctx)
        root = tracer.finish()
        assert root.name == "query"
        assert [c.name for c in root.children] == ["optimize", "execute"]
        execute = root.children[1]
        # Span timing runs on the simulated clock, so the execute span
        # covers exactly the work the stats clock recorded.
        assert execute.cost == pytest.approx(ctx.stats.elapsed())
        assert root.children[0].attributes == {"algorithm": "ve+"}

    def test_operator_spans_nest_under_execute(self, setting):
        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        with tracer.span("execute"):
            evaluate_dag(lower(plan), ctx)
        execute = tracer.root.children[0]
        kinds = {c.kind for c in execute.children}
        assert kinds == {"operator"}
        assert len(execute.children) == plan.count_nodes()
        assert sum(c.cost for c in execute.children) == pytest.approx(
            ctx.stats.elapsed()
        )

    def test_events_attach_to_open_span(self):
        tracer = QueryTracer(stats=IOStats())
        with tracer.span("phase"):
            tracer.event("checkpoint", detail=1)
        (span,) = tracer.root.children
        assert span.events == [{"name": "checkpoint", "at": 0.0, "detail": 1}]

    def test_to_dict_is_json_safe(self, setting):
        import json

        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        with tracer.span("execute"):
            evaluate_dag(lower(plan), ctx)
        doc = tracer.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["kind"] == "lifecycle"


class _Node:
    """Stand-in plan node for direct hook-level tests."""

    def __init__(self, name):
        self._name = name

    def label(self):
        return self._name


class _Rel:
    ntuples = 3


class TestDegradeAttribution:
    def test_degrade_attaches_to_its_own_operator_only(self):
        """Regression: a pending degrade note must not leak onto a
        different operator's row (the old single-slot tracer attached
        it to whichever operator executed next)."""
        tracer = QueryTracer(stats=IOStats())
        degraded_node, other_node = _Node("HashJoin"), _Node("Scan(s1)")
        tracer.on_degrade(degraded_node, "hash join degraded to sort-merge")
        # A *different* operator completes first (e.g. the degraded
        # operator raised, or interleaved evaluation order).
        tracer.on_execute(other_node, _Rel(), IOStats())
        assert tracer.operators[0].degraded is None
        tracer.on_execute(degraded_node, _Rel(), IOStats())
        assert tracer.operators[1].degraded == (
            "hash join degraded to sort-merge"
        )

    def test_degrade_not_consumed_by_memo_hit(self):
        tracer = QueryTracer(stats=IOStats())
        node = _Node("HashAgg")
        tracer.on_degrade(node, "degraded")
        tracer.on_memo_hit(_Node("Scan(s2)"), _Rel())
        assert tracer.operators[0].degraded is None
        tracer.on_execute(node, _Rel(), IOStats())
        assert tracer.operators[1].degraded == "degraded"

    def test_abandoned_degrade_never_surfaces(self):
        """An operator that degraded then *failed* leaves no note to
        pollute later rows."""
        tracer = QueryTracer(stats=IOStats())
        # Keep every node alive: pending degrades key on object identity,
        # so letting one die could hand its id() to a later node.
        nodes = [_Node("HashJoin"), _Node("Scan(s1)"), _Node("Scan(s2)")]
        tracer.on_degrade(nodes[0], "degraded then raised")
        tracer.on_execute(nodes[1], _Rel(), IOStats())
        tracer.on_execute(nodes[2], _Rel(), IOStats())
        assert all(op.degraded is None for op in tracer.operators)

    def test_memo_hit_rows_are_zero_cost(self):
        tracer = QueryTracer(stats=IOStats())
        tracer.on_memo_hit(_Node("Scan(s1)"), _Rel())
        (row,) = tracer.operators
        assert row.memoized
        assert row.elapsed == 0.0
        assert row.out_rows == 3


class TestSpanErrorHandling:
    def test_raising_body_closes_span_with_error_event(self):
        """Regression: a raising operator body used to leave its span
        dangling on the stack, so every later span nested under the
        failed one."""
        tracer = QueryTracer(stats=IOStats())
        with pytest.raises(RuntimeError):
            with tracer.span("execute"):
                raise RuntimeError("operator blew up")
        (span,) = tracer.root.children
        assert span.end is not None
        (event,) = span.events
        assert event["name"] == "error"
        assert event["type"] == "RuntimeError"
        assert event["message"] == "operator blew up"
        # Parentage is intact: the next span is a *sibling*.
        with tracer.span("retry"):
            pass
        assert [c.name for c in tracer.root.children] == [
            "execute", "retry",
        ]

    def test_raising_body_closes_dangling_descendants(self):
        tracer = QueryTracer(stats=IOStats())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                tracer.push_span("inner")   # never popped: body raises
                raise ValueError("boom")
        outer = tracer.root.children[0]
        (inner,) = outer.children
        assert inner.end is not None
        assert tracer.current is tracer.root

    def test_push_pop_pairing(self):
        tracer = QueryTracer(clock=lambda: 5.0)
        span = tracer.push_span("queue", kind="queue", start=1.0)
        assert tracer.current is span
        tracer.pop_span(span, end=4.0)
        assert span.start == 1.0 and span.end == 4.0
        assert tracer.current is tracer.root

    def test_finish_closes_dangling_spans(self):
        tracer = QueryTracer(clock=lambda: 7.0)
        tracer.push_span("a")
        tracer.push_span("b")
        root = tracer.finish()
        assert root.end == 7.0
        (a,) = root.children
        (b,) = a.children
        assert a.end == 7.0 and b.end == 7.0

    def test_pop_of_already_closed_span_is_a_noop(self):
        tracer = QueryTracer(clock=lambda: 2.0)
        span = tracer.push_span("x")
        tracer.pop_span(span)
        sentinel = tracer.push_span("y")
        tracer.pop_span(span)   # x is gone; y must survive untouched
        assert tracer.current is sentinel


class TestRequestTrace:
    def _trace(self, clock=lambda: 0.0, request_id="req-00001",
               tenant="gold", arrival=0.0):
        from repro.obs import ServeTracer

        tracer = ServeTracer(clock=clock)
        return tracer, tracer.begin_request(request_id, tenant, arrival)

    def test_completed_request_span_tree(self):
        now = [10.0]
        _, trace = self._trace(clock=lambda: now[0])
        trace.admission(10.0, True, epoch=3)
        trace.begin_dispatch(25.0, wait=15.0)
        trace.close(40.0, "ok")
        entry = trace.entry()
        assert entry["status"] == "ok"
        assert entry["stats_epoch"] == 3
        assert entry["reason"] is None
        root = entry["root"]
        assert root["kind"] == "request"
        assert root["start"] == 0.0 and root["end"] == 40.0
        admission, queue, dispatch = root["children"]
        assert admission["kind"] == "admission"
        assert {e["name"] for e in admission["events"]} == {
            "admitted", "snapshot_pin",
        }
        assert queue["kind"] == "queue"
        assert (queue["start"], queue["end"]) == (10.0, 25.0)
        assert queue["attributes"]["queue_wait"] == 15.0
        assert dispatch["kind"] == "dispatch"
        assert (dispatch["start"], dispatch["end"]) == (25.0, 40.0)

    def test_rejected_request_closes_with_typed_reason(self):
        _, trace = self._trace()
        trace.admission(5.0, False, reason="queue_full")
        entry = trace.entry()
        assert entry["status"] == "shed"
        assert entry["reason"] == "queue_full"
        assert entry["stats_epoch"] is None
        (admission,) = entry["root"]["children"]
        (event,) = admission["events"]
        assert event == {"name": "shed", "at": 5.0, "reason": "queue_full"}

    def test_queued_request_shed_mid_wait(self):
        _, trace = self._trace()
        trace.admission(2.0, True, epoch=1)
        trace.shed_now(8.0, "evicted")
        entry = trace.entry()
        assert entry["status"] == "shed"
        assert entry["reason"] == "evicted"
        _, queue = entry["root"]["children"]
        assert queue["end"] == 8.0
        assert any(e["name"] == "shed" for e in queue["events"])

    def test_close_is_idempotent(self):
        _, trace = self._trace()
        trace.admission(1.0, True, epoch=0)
        trace.begin_dispatch(2.0, wait=1.0)
        trace.close(3.0, "ok")
        trace.close(99.0, "error", reason="rate")
        assert trace.status == "ok"
        assert trace.entry()["root"]["end"] == 3.0

    def test_offset_clock_override(self):
        serving_now = [100.0]
        _, trace = self._trace(clock=lambda: serving_now[0])
        trace.admission(100.0, True, epoch=0)
        trace.begin_dispatch(100.0, wait=0.0)
        # Execution swaps in dispatch_start + stats.elapsed() so the
        # engine's spans land on the serving timeline.
        stats = IOStats()
        trace.set_time(lambda: 100.0 + stats.elapsed())
        with trace.tracer.span("execute"):
            stats.page_reads += 10
        trace.reset_time()
        dispatch = trace.tracer.current
        (execute,) = dispatch.children
        assert execute.start == 100.0
        assert execute.end == 100.0 + stats.elapsed()
        assert execute.end > 100.0


class TestServeTracer:
    def test_document_validates_and_serializes_deterministically(self):
        import json

        from repro.obs import ServeTracer, validate_trace_document

        def run():
            tracer = ServeTracer(clock=lambda: 0.0)
            ok = tracer.begin_request("req-00000", "gold", 0.0)
            ok.admission(1.0, True, epoch=2)
            ok.begin_dispatch(2.0, wait=1.0)
            ok.close(5.0, "ok")
            shed = tracer.begin_request("req-00001", "bulk", 1.0)
            shed.admission(1.5, False, reason="rate")
            tracer.event("reload", table="location", epoch=3)
            return tracer.document(name="unit")

        doc = run()
        validate_trace_document(doc)
        assert [e["status"] for e in doc["requests"]] == ["ok", "shed"]
        assert doc["events"] == [
            {"name": "reload", "at": 0.0, "table": "location", "epoch": 3}
        ]
        assert (
            json.dumps(run(), sort_keys=True)
            == json.dumps(run(), sort_keys=True)
        )

    def test_untyped_shed_reason_rejected_by_validator(self):
        from repro.obs import ServeTracer, validate_trace_document

        tracer = ServeTracer()
        trace = tracer.begin_request("req-00000", "gold", 0.0)
        trace.admission(1.0, False, reason="because")
        with pytest.raises(ValueError, match="reason"):
            validate_trace_document(tracer.document())

    def test_ok_request_must_carry_lifecycle_spans(self):
        from repro.obs import ServeTracer, validate_trace_document

        tracer = ServeTracer()
        trace = tracer.begin_request("req-00000", "gold", 0.0)
        trace.close(1.0, "ok")   # no admission/queue/dispatch children
        with pytest.raises(ValueError, match="admission"):
            validate_trace_document(tracer.document())
