"""Tests for the span-based query tracer."""

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.obs import QueryTracer
from repro.plans import GroupBy, ProductJoin, Scan, lower
from repro.plans.runtime import ExecutionContext, evaluate_dag
from repro.semiring import SUM_PRODUCT
from repro.storage.iostats import IOStats


@pytest.fixture
def setting(rng):
    cat = Catalog()
    cat.register(complete_relation([var("a", 6), var("b", 5)], rng=rng,
                                   name="s1"))
    cat.register(complete_relation([var("b", 5), var("c", 4)], rng=rng,
                                   name="s2"))
    plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])
    return cat, plan


class TestSpans:
    def test_nesting_and_cost_clock(self, setting):
        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        with tracer.span("optimize", algorithm="ve+"):
            pass
        with tracer.span("execute"):
            evaluate_dag(lower(plan), ctx)
        root = tracer.finish()
        assert root.name == "query"
        assert [c.name for c in root.children] == ["optimize", "execute"]
        execute = root.children[1]
        # Span timing runs on the simulated clock, so the execute span
        # covers exactly the work the stats clock recorded.
        assert execute.cost == pytest.approx(ctx.stats.elapsed())
        assert root.children[0].attributes == {"algorithm": "ve+"}

    def test_operator_spans_nest_under_execute(self, setting):
        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        with tracer.span("execute"):
            evaluate_dag(lower(plan), ctx)
        execute = tracer.root.children[0]
        kinds = {c.kind for c in execute.children}
        assert kinds == {"operator"}
        assert len(execute.children) == plan.count_nodes()
        assert sum(c.cost for c in execute.children) == pytest.approx(
            ctx.stats.elapsed()
        )

    def test_events_attach_to_open_span(self):
        tracer = QueryTracer(stats=IOStats())
        with tracer.span("phase"):
            tracer.event("checkpoint", detail=1)
        (span,) = tracer.root.children
        assert span.events == [{"name": "checkpoint", "at": 0.0, "detail": 1}]

    def test_to_dict_is_json_safe(self, setting):
        import json

        cat, plan = setting
        tracer = QueryTracer()
        ctx = ExecutionContext(cat, SUM_PRODUCT, tracer=tracer)
        tracer.bind_stats(ctx.stats)
        with tracer.span("execute"):
            evaluate_dag(lower(plan), ctx)
        doc = tracer.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["kind"] == "lifecycle"


class _Node:
    """Stand-in plan node for direct hook-level tests."""

    def __init__(self, name):
        self._name = name

    def label(self):
        return self._name


class _Rel:
    ntuples = 3


class TestDegradeAttribution:
    def test_degrade_attaches_to_its_own_operator_only(self):
        """Regression: a pending degrade note must not leak onto a
        different operator's row (the old single-slot tracer attached
        it to whichever operator executed next)."""
        tracer = QueryTracer(stats=IOStats())
        degraded_node, other_node = _Node("HashJoin"), _Node("Scan(s1)")
        tracer.on_degrade(degraded_node, "hash join degraded to sort-merge")
        # A *different* operator completes first (e.g. the degraded
        # operator raised, or interleaved evaluation order).
        tracer.on_execute(other_node, _Rel(), IOStats())
        assert tracer.operators[0].degraded is None
        tracer.on_execute(degraded_node, _Rel(), IOStats())
        assert tracer.operators[1].degraded == (
            "hash join degraded to sort-merge"
        )

    def test_degrade_not_consumed_by_memo_hit(self):
        tracer = QueryTracer(stats=IOStats())
        node = _Node("HashAgg")
        tracer.on_degrade(node, "degraded")
        tracer.on_memo_hit(_Node("Scan(s2)"), _Rel())
        assert tracer.operators[0].degraded is None
        tracer.on_execute(node, _Rel(), IOStats())
        assert tracer.operators[1].degraded == "degraded"

    def test_abandoned_degrade_never_surfaces(self):
        """An operator that degraded then *failed* leaves no note to
        pollute later rows."""
        tracer = QueryTracer(stats=IOStats())
        # Keep every node alive: pending degrades key on object identity,
        # so letting one die could hand its id() to a later node.
        nodes = [_Node("HashJoin"), _Node("Scan(s1)"), _Node("Scan(s2)")]
        tracer.on_degrade(nodes[0], "degraded then raised")
        tracer.on_execute(nodes[1], _Rel(), IOStats())
        tracer.on_execute(nodes[2], _Rel(), IOStats())
        assert all(op.degraded is None for op in tracer.operators)

    def test_memo_hit_rows_are_zero_cost(self):
        tracer = QueryTracer(stats=IOStats())
        tracer.on_memo_hit(_Node("Scan(s1)"), _Rel())
        (row,) = tracer.operators
        assert row.memoized
        assert row.elapsed == 0.0
        assert row.out_rows == 3
