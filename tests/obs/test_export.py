"""Tests for the structured exporters and their strict validators."""

import json

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.obs import (
    BENCH_SCHEMA,
    METRIC_CATALOG,
    MetricsRegistry,
    bench_document,
    explain_document,
    metrics_document,
    plan_explain_dict,
    validate_bench_document,
    validate_explain_document,
    validate_metrics_document,
)
from repro.obs.validate import validate_document
from repro.optimizer import QuerySpec, VariableElimination
from repro.plans import Scan, Select
from repro.semiring import SUM_PRODUCT


@pytest.fixture
def optimization(rng):
    cat = Catalog()
    cat.register(complete_relation([var("a", 6), var("b", 5)], rng=rng,
                                   name="s1"))
    cat.register(complete_relation([var("b", 5), var("c", 4)], rng=rng,
                                   name="s2"))
    spec = QuerySpec(tables=("s1", "s2"), query_vars=("a",))
    return VariableElimination("degree").optimize(spec, cat), cat


class TestPlanExplainDict:
    def test_shape(self, optimization):
        from repro.plans.annotate import annotate

        opt, cat = optimization
        doc = plan_explain_dict(annotate(opt.plan, cat))
        assert doc["op"] == "group_by"
        assert doc["group_names"] == ["a"]
        assert "estimated" in doc
        leaves = []
        stack = [doc]
        while stack:
            node = stack.pop()
            kids = node.get("inputs", [])
            stack.extend(kids)
            if not kids:
                leaves.append(node)
        assert {leaf["table"] for leaf in leaves} == {"s1", "s2"}

    def test_deep_plan_does_not_recurse(self):
        plan = Scan("s1")
        for _ in range(5000):
            plan = Select(plan, {"a": 0})
        doc = plan_explain_dict(plan)  # must not hit the recursion limit
        depth = 0
        while "inputs" in doc:
            doc = doc["inputs"][0]
            depth += 1
        assert depth == 5000

    def test_unknown_node_rejected(self):
        class Weird:
            def label(self):
                return "weird"

            def children(self):
                return []

        with pytest.raises(ValueError):
            plan_explain_dict(Weird())


class TestExplainDocument:
    def test_plan_only_document_validates(self, optimization):
        opt, _ = optimization
        doc = explain_document(opt)
        validate_explain_document(doc)
        assert doc["execution"] is None
        assert json.loads(json.dumps(doc)) == doc

    def test_analyze_document_validates(self, optimization):
        from repro.plans.profile import profile_execution

        opt, cat = optimization
        profile = profile_execution(opt.plan, cat, SUM_PRODUCT)
        doc = explain_document(
            opt, execution=profile.total, operators=profile.operators
        )
        validate_explain_document(doc)
        ops = doc["execution"]["operators"]
        assert len(ops) == opt.plan.count_nodes()
        assert doc["execution"]["totals"]["page_reads"] == (
            profile.total.page_reads
        )

    def test_unknown_key_rejected(self, optimization):
        opt, _ = optimization
        doc = explain_document(opt)
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            validate_explain_document(doc)

    def test_missing_key_rejected(self, optimization):
        opt, _ = optimization
        doc = explain_document(opt)
        del doc["algorithm"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_explain_document(doc)

    def test_malformed_plan_node_rejected(self, optimization):
        opt, _ = optimization
        doc = explain_document(opt)
        doc["plan"]["op"] = "teleport"
        with pytest.raises(ValueError, match="unknown op"):
            validate_explain_document(doc)


class TestMetricsDocument:
    def test_catalog_metrics_validate(self):
        reg = MetricsRegistry()
        reg.counter("query.page_reads").inc(3)
        reg.counter("queries.total", status="ok").inc()
        reg.gauge("vecache.tables").set(2)
        reg.histogram("query.operator_elapsed").observe(10.0)
        doc = metrics_document(reg, name="unit")
        validate_metrics_document(doc)
        assert doc["name"] == "unit"

    def test_uncataloged_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("made.up").inc()
        with pytest.raises(ValueError, match="not in the catalog"):
            validate_metrics_document(metrics_document(reg))

    def test_bench_prefix_is_freeform(self):
        reg = MetricsRegistry()
        reg.counter("bench.anything_goes").inc()
        validate_metrics_document(metrics_document(reg))

    def test_wrong_kind_rejected(self):
        doc = metrics_document(MetricsRegistry())
        doc["metrics"]["queries.total"] = {"kind": "gauge", "value": 1}
        with pytest.raises(ValueError, match="catalog says"):
            validate_metrics_document(doc)

    def test_malformed_entry_rejected(self):
        doc = metrics_document(MetricsRegistry())
        doc["metrics"]["queries.total"] = {"kind": "counter"}
        with pytest.raises(ValueError, match="missing keys"):
            validate_metrics_document(doc)

    def test_every_catalog_kind_is_known(self):
        assert set(METRIC_CATALOG.values()) <= {
            "counter", "gauge", "histogram"
        }

    def test_catalog_documented(self):
        """docs/observability.md must mention every catalog metric.

        The validator enforces code→catalog agreement; this pins
        catalog→docs, so a new metric (calib.*, ...) cannot land
        without a row in the documented table.
        """
        from pathlib import Path

        doc = (
            Path(__file__).parents[2] / "docs" / "observability.md"
        ).read_text()
        missing = [name for name in METRIC_CATALOG if f"`{name}" not in doc]
        assert not missing, f"undocumented metrics: {missing}"

    def test_serve_metrics_documented_in_serving_guide(self):
        """docs/serving.md must name every serve.* catalog metric.

        The serving guide carries its own metrics table; this keeps
        it from drifting as serving metrics are added.
        """
        from pathlib import Path

        doc = (
            Path(__file__).parents[2] / "docs" / "serving.md"
        ).read_text()
        serve_names = [
            name for name in METRIC_CATALOG if name.startswith("serve.")
        ]
        assert serve_names, "serve.* metrics missing from the catalog"
        missing = [name for name in serve_names if f"`{name}" not in doc]
        assert not missing, f"not in docs/serving.md: {missing}"


class TestBenchDocument:
    def test_roundtrip_validates(self):
        reg = MetricsRegistry()
        reg.counter("bench.rows").inc(2)
        doc = bench_document(
            "t", "Table T", ["x", "y"], [[1, 2.0], [3, 4.0]], metrics=reg
        )
        validate_bench_document(doc)
        assert validate_document(doc) == BENCH_SCHEMA

    def test_row_width_mismatch_rejected(self):
        doc = bench_document("t", "Table T", ["x", "y"], [[1]])
        with pytest.raises(ValueError, match="rows"):
            validate_bench_document(doc)

    def test_embedded_metrics_are_checked(self):
        doc = bench_document("t", "Table T", ["x"], [[1]])
        doc["metrics"]["metrics"]["made.up"] = {
            "kind": "counter", "value": 1,
        }
        with pytest.raises(ValueError, match="not in the catalog"):
            validate_bench_document(doc)


class TestValidateDispatch:
    def test_unknown_schema(self):
        with pytest.raises(ValueError, match="unknown schema"):
            validate_document({"schema": "repro.nope.v9"})

    def test_untagged_document(self):
        with pytest.raises(ValueError, match="no 'schema' tag"):
            validate_document({"metrics": {}})
