"""Tests for the Prometheus-style text exposition and its parser."""

import pytest

from repro.obs import (
    MetricsRegistry,
    metrics_text,
    parse_metrics_text,
    validate_metrics_text,
)


def registry():
    reg = MetricsRegistry()
    reg.counter("queries.total", status="ok").inc(3)
    reg.gauge("serve.queue_depth", tenant="gold").set(2.0)
    hist = reg.histogram("serve.queue_wait", tenant="gold")
    hist.observe(5.0)
    hist.observe(50.0)
    return reg


class TestRender:
    def test_families_are_typed_and_mangled(self):
        text = metrics_text(registry())
        lines = text.splitlines()
        assert "# TYPE queries_total counter" in lines
        assert "# TYPE serve_queue_depth gauge" in lines
        assert "# TYPE serve_queue_wait histogram" in lines
        assert 'queries_total{status="ok"} 3' in lines
        assert 'serve_queue_depth{tenant="gold"} 2' in lines

    def test_histogram_expands_cumulatively(self):
        text = metrics_text(registry())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("serve_queue_wait_bucket")
        ]
        assert buckets[-1].startswith(
            'serve_queue_wait_bucket{le="+Inf",tenant="gold"}'
        )
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)        # cumulative
        assert counts[-1] == 2
        assert 'serve_queue_wait_sum{tenant="gold"} 55' in text
        assert 'serve_queue_wait_count{tenant="gold"} 2' in text

    def test_deterministic_and_snapshot_equivalent(self):
        reg = registry()
        assert metrics_text(reg) == metrics_text(reg.snapshot())

    def test_empty_registry_renders_empty(self):
        assert metrics_text(MetricsRegistry()) == ""


class TestRoundTrip:
    def test_every_line_parses_and_matches_catalog(self):
        text = metrics_text(registry())
        samples = parse_metrics_text(text)
        assert validate_metrics_text(text) == len(samples)
        families = {s["family"] for s in samples}
        assert families == {
            "queries_total", "serve_queue_depth", "serve_queue_wait",
        }
        wait = [s for s in samples if s["family"] == "serve_queue_wait"]
        assert all(s["kind"] == "histogram" for s in wait)
        inf = [
            s for s in wait if s["labels"].get("le") == "+Inf"
        ]
        assert len(inf) == 1 and inf[0]["value"] == 2.0

    def test_bench_prefix_exempt_from_catalog(self):
        reg = MetricsRegistry()
        reg.counter("bench.serving_runs").inc()
        samples = parse_metrics_text(metrics_text(reg))
        assert samples[0]["family"] == "bench_serving_runs"


class TestDriftRejection:
    def test_unknown_family_rejected(self):
        text = (
            "# TYPE made_up_metric counter\n"
            "made_up_metric 1\n"
        )
        with pytest.raises(ValueError, match="not in METRIC_CATALOG"):
            parse_metrics_text(text)

    def test_kind_mismatch_rejected(self):
        text = (
            "# TYPE queries_total gauge\n"
            "queries_total 1\n"
        )
        with pytest.raises(ValueError, match="kind"):
            parse_metrics_text(text)

    def test_untyped_sample_rejected(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_metrics_text("queries_total 1\n")

    def test_unparseable_line_rejected(self):
        text = (
            "# TYPE queries_total counter\n"
            "queries_total one\n"
        )
        with pytest.raises(ValueError, match="bad sample value"):
            parse_metrics_text(text)

    def test_malformed_labels_rejected(self):
        text = (
            "# TYPE queries_total counter\n"
            "queries_total{status=ok} 1\n"
        )
        with pytest.raises(ValueError, match="malformed labels"):
            parse_metrics_text(text)

    def test_suffix_on_non_histogram_rejected(self):
        text = (
            "# TYPE queries_total counter\n"
            "queries_total_sum 1\n"
        )
        with pytest.raises(ValueError, match="non-histogram"):
            parse_metrics_text(text)
