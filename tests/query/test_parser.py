"""Parser tests for the paper's SQL extension."""

import pytest

from repro.errors import ParseError
from repro.query import (
    CreateViewStatement,
    SelectStatement,
    parse_create_mpfview,
    parse_select,
    parse_statement,
)

CREATE_SQL = """
create mpfview invest as
  (select pid, sid, wid, cid, tid,
          measure = (* contracts.price, warehouses.w_factor,
                       transporters.t_overhead, location.quantity,
                       ctdeals.ct_discount)
   from contracts, warehouses, transporters, location, ctdeals
   where contracts.pid = location.pid and
         location.wid = warehouses.wid and
         warehouses.cid = ctdeals.cid and
         ctdeals.tid = transporters.tid)
"""


class TestCreateView:
    def test_paper_syntax(self):
        stmt = parse_create_mpfview(CREATE_SQL)
        assert stmt.name == "invest"
        assert stmt.variables == ("pid", "sid", "wid", "cid", "tid")
        assert stmt.multiplicative_op == "*"
        assert stmt.tables == (
            "contracts", "warehouses", "transporters", "location", "ctdeals",
        )
        assert len(stmt.measure_refs) == 5
        assert ("contracts.pid", "location.pid") in stmt.join_predicates

    def test_additive_view(self):
        sql = (
            "create mpfview costs as (select a, b, "
            "measure = (+ t1.c1, t2.c2) from t1, t2)"
        )
        stmt = parse_create_mpfview(sql)
        assert stmt.multiplicative_op == "+"
        assert stmt.join_predicates == ()

    def test_boolean_view(self):
        sql = (
            "create mpfview reach as (select a, "
            "measure = (and t1.e, t2.e) from t1, t2)"
        )
        assert parse_create_mpfview(sql).multiplicative_op == "and"

    def test_bad_operator(self):
        sql = (
            "create mpfview v as (select a, measure = (< t1.f) from t1)"
        )
        with pytest.raises(ParseError):
            parse_create_mpfview(sql)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_create_mpfview(CREATE_SQL + " banana")

    def test_truncated(self):
        with pytest.raises(ParseError):
            parse_create_mpfview("create mpfview v as (select a,")


class TestSelect:
    def test_basic_form(self):
        stmt = parse_select("select wid, sum(inv) from invest group by wid")
        assert stmt.view == "invest"
        assert stmt.group_by == ("wid",)
        assert stmt.aggregate == "sum"
        assert stmt.measure_ref == "inv"
        assert stmt.selections == {}
        assert stmt.having is None

    def test_restricted_answer(self):
        stmt = parse_select(
            "select wid, sum(inv) from invest where wid = 3 group by wid"
        )
        assert stmt.selections == {"wid": 3}

    def test_constrained_domain(self):
        stmt = parse_select(
            "select cid, sum(inv) from invest where tid = 1 group by cid"
        )
        assert stmt.selections == {"tid": 1}
        assert stmt.group_by == ("cid",)

    def test_conjunctive_where(self):
        stmt = parse_select(
            "select cid, min(inv) from invest "
            "where tid = 1 and sid = 2 group by cid"
        )
        assert stmt.selections == {"tid": 1, "sid": 2}
        assert stmt.aggregate == "min"

    def test_having(self):
        stmt = parse_select(
            "select wid, sum(inv) from invest group by wid having f < 100"
        )
        assert stmt.having == ("<", 100.0)

    def test_having_float_threshold(self):
        stmt = parse_select(
            "select wid, sum(inv) from invest group by wid having inv >= 0.5"
        )
        assert stmt.having == (">=", 0.5)

    def test_multi_variable_group_by(self):
        stmt = parse_select(
            "select wid, cid, sum(inv) from invest group by wid, cid"
        )
        assert stmt.group_by == ("wid", "cid")

    def test_aggregate_only_total(self):
        stmt = parse_select("select sum(inv) from invest")
        assert stmt.group_by == ()

    def test_select_list_group_by_mismatch(self):
        with pytest.raises(ParseError):
            parse_select(
                "select wid, sum(inv) from invest group by cid"
            )

    def test_unknown_aggregate(self):
        with pytest.raises(ParseError):
            parse_select("select wid, avg(inv) from invest group by wid")

    def test_bad_having_operator(self):
        with pytest.raises(ParseError):
            parse_select(
                "select wid, sum(inv) from invest group by wid having f + 3"
            )

    def test_case_insensitive_keywords(self):
        stmt = parse_select("SELECT wid, SUM(inv) FROM invest GROUP BY wid")
        assert stmt.aggregate == "sum"


class TestDispatch:
    def test_statement_dispatch(self):
        assert isinstance(parse_statement(CREATE_SQL), CreateViewStatement)
        assert isinstance(
            parse_statement("select sum(f) from v"), SelectStatement
        )

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("drop table students")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_statement("select $ from v")


class TestCreateIndex:
    def test_parse(self):
        from repro.query import CreateIndexStatement

        stmt = parse_statement("create index on contracts ( pid )")
        assert isinstance(stmt, CreateIndexStatement)
        assert stmt.table == "contracts"
        assert stmt.variable == "pid"

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("create index on contracts(pid) extra")

    def test_engine_integration(self, tiny_supply_chain):
        from repro import Database

        db = Database()
        for t in tiny_supply_chain.tables:
            db.register(tiny_supply_chain.catalog.relation(t))
        outcome = db.execute("create index on ctdeals(tid)")
        assert outcome == "ctdeals(tid)"
        assert db.catalog.index_on("ctdeals", "tid") is not None
