"""Tests for MPFView and MPFQuery objects."""

import pytest

from repro.errors import QueryError
from repro.query import HavingClause, MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT


@pytest.fixture
def view(tiny_supply_chain):
    return MPFView("invest", tiny_supply_chain.tables, SUM_PRODUCT)


class TestMPFView:
    def test_variables_union(self, view, tiny_supply_chain):
        variables = view.variables(tiny_supply_chain.catalog)
        assert set(variables) == {"pid", "sid", "wid", "cid", "tid"}

    def test_materialize_is_product_join(self, view, tiny_supply_chain):
        from functools import reduce

        from repro.algebra import product_join

        cat = tiny_supply_chain.catalog
        expected = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            [cat.relation(t) for t in view.tables],
        )
        assert view.materialize(cat).equals(expected, SUM_PRODUCT)

    def test_empty_tables_rejected(self):
        with pytest.raises(QueryError):
            MPFView("v", ())

    def test_duplicate_tables_rejected(self):
        with pytest.raises(QueryError):
            MPFView("v", ("a", "a"))


class TestMPFQueryForms:
    def test_basic(self, view):
        q = MPFQuery(view, ("wid",))
        assert q.form == "basic"

    def test_restricted_answer(self, view):
        q = MPFQuery(view, ("wid",), selections={"wid": 1})
        assert q.form == "restricted-answer"

    def test_constrained_domain(self, view):
        q = MPFQuery(view, ("cid",), selections={"tid": 1})
        assert q.form == "constrained-domain"

    def test_mixed_selections(self, view):
        q = MPFQuery(view, ("cid",), selections={"cid": 0, "tid": 1})
        assert q.form == "restricted-answer+constrained-domain"

    def test_constrained_range(self, view):
        q = MPFQuery(view, ("wid",), having=HavingClause("<", 10.0))
        assert q.form == "basic+constrained-range"


class TestValidation:
    def test_unknown_group_by(self, view, tiny_supply_chain):
        q = MPFQuery(view, ("ghost",))
        with pytest.raises(QueryError):
            q.validate(tiny_supply_chain.catalog)

    def test_unknown_selection(self, view, tiny_supply_chain):
        q = MPFQuery(view, ("wid",), selections={"ghost": 1})
        with pytest.raises(QueryError):
            q.validate(tiny_supply_chain.catalog)

    def test_to_spec(self, view, tiny_supply_chain):
        q = MPFQuery(view, ("cid",), selections={"tid": 1})
        spec = q.to_spec(tiny_supply_chain.catalog)
        assert spec.tables == view.tables
        assert spec.query_vars == ("cid",)
        assert spec.selections == {"tid": 1}


class TestHaving:
    def test_finish_applies_filter(self, view, tiny_supply_chain):
        q = MPFQuery(view, ("wid",), having=HavingClause(">", 0.0))
        materialized = view.materialize(tiny_supply_chain.catalog)
        from repro.algebra import marginalize

        result = marginalize(materialized, ["wid"], SUM_PRODUCT)
        filtered = q.finish(result)
        assert filtered.ntuples == result.ntuples  # all positive

        q2 = MPFQuery(view, ("wid",), having=HavingClause("<", 0.0))
        assert q2.finish(result).ntuples == 0

    def test_finish_noop_without_having(self, view):
        q = MPFQuery(view, ("wid",))
        from repro.data import FunctionalRelation

        rel = FunctionalRelation.constant(1.0)
        assert q.finish(rel) is rel


def test_repr_round_trip_information(view):
    q = MPFQuery(view, ("wid",), selections={"tid": 1},
                 having=HavingClause("<", 5))
    text = repr(q)
    assert "wid" in text and "tid=1" in text and "< 5" in text
