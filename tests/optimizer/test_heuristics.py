"""Unit tests for elimination heuristics (Section 5.5)."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimizer import QuerySpec, VariableElimination, parse_heuristic
from repro.optimizer.base import PlanContext
from repro.optimizer.heuristics import (
    Candidate,
    choose_variable,
    score_candidates,
)
from repro.datagen import star_view


class TestParse:
    def test_single(self):
        assert parse_heuristic("degree") == ("degree",)
        assert parse_heuristic("elim_cost") == ("elim_cost",)

    def test_combo(self):
        assert parse_heuristic("degree+width") == ("degree", "width")
        assert parse_heuristic("degree + elim_cost") == ("degree", "elim_cost")

    def test_unknown(self):
        with pytest.raises(OptimizationError):
            parse_heuristic("entropy")

    def test_random_cannot_combine(self):
        with pytest.raises(OptimizationError):
            parse_heuristic("random+degree")


@pytest.fixture
def star_context():
    view = star_view(n_tables=5, domain_size=10)
    spec = QuerySpec(tables=view.tables, query_vars=(view.chain_variables[0],))
    return view, PlanContext(spec, view.catalog)


def _candidates_for(view, context):
    subplans = [context.leaf(t) for t in view.tables]
    query_vars = frozenset(context.spec.query_vars)
    out = []
    names = sorted(
        set().union(*(s.variables for s in subplans)) - query_vars
    )
    for v in names:
        rels = [s for s in subplans if v in s.variables]
        neighborhood = frozenset().union(*(s.variables for s in rels))
        outside = query_vars.union(
            *(s.variables for s in subplans if v not in s.variables)
        ) if any(v not in s.variables for s in subplans) else query_vars
        out.append(
            Candidate(
                var=v,
                rels=rels,
                neighborhood=neighborhood,
                surviving=frozenset(outside),
            )
        )
    return out


class TestScores:
    def test_degree_prefers_hub_on_star(self, star_context):
        """The Table 2 pathology: the hub's surviving interface is just
        the query variable, so degree scores it lowest."""
        view, context = star_context
        candidates = _candidates_for(view, context)
        scores = score_candidates(candidates, context, ("degree",))
        assert min(scores, key=scores.get) == "h0"

    def test_width_avoids_hub_on_star(self, star_context):
        view, context = star_context
        candidates = _candidates_for(view, context)
        scores = score_candidates(candidates, context, ("width",))
        assert max(scores, key=scores.get) == "h0"

    def test_elim_cost_avoids_hub_on_star(self, star_context):
        view, context = star_context
        candidates = _candidates_for(view, context)
        scores = score_candidates(candidates, context, ("elim_cost",))
        assert max(scores, key=scores.get) == "h0"

    def test_combo_normalized_product(self, star_context):
        view, context = star_context
        candidates = _candidates_for(view, context)
        deg = score_candidates(candidates, context, ("degree",))
        wid = score_candidates(candidates, context, ("width",))
        combo = score_candidates(candidates, context, ("degree", "width"))
        top_deg = max(deg.values())
        top_wid = max(wid.values())
        for c in candidates:
            expected = (deg[c.var] / top_deg) * (wid[c.var] / top_wid)
            assert combo[c.var] == pytest.approx(expected)


class TestChoose:
    def test_deterministic_tie_break(self, star_context):
        view, context = star_context
        candidates = _candidates_for(view, context)
        first = choose_variable(candidates, context, ("width",))
        second = choose_variable(candidates, context, ("width",))
        assert first == second

    def test_random_respects_seed(self, star_context):
        view, context = star_context
        candidates = _candidates_for(view, context)
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        assert choose_variable(
            candidates, context, ("random",), rng1
        ) == choose_variable(candidates, context, ("random",), rng2)

    def test_empty_candidates(self, star_context):
        _, context = star_context
        with pytest.raises(OptimizationError):
            choose_variable([], context, ("degree",))


class TestRandomHeuristicStability:
    def test_same_seed_same_plan(self):
        view = star_view(n_tables=4, domain_size=5)
        spec = QuerySpec(
            tables=view.tables, query_vars=(view.chain_variables[0],)
        )
        a = VariableElimination("random", seed=9).optimize(spec, view.catalog)
        b = VariableElimination("random", seed=9).optimize(spec, view.catalog)
        assert a.cost == b.cost
        assert a.extras["elimination_order"] == b.extras["elimination_order"]

    def test_different_seeds_explore(self):
        view = star_view(n_tables=5, domain_size=10)
        spec = QuerySpec(
            tables=view.tables, query_vars=(view.chain_variables[0],)
        )
        costs = {
            VariableElimination("random", seed=s).optimize(
                spec, view.catalog
            ).cost
            for s in range(8)
        }
        assert len(costs) > 1
