"""Plan-space structure: Theorems 1 & 3, the CS+ guarantee, and
optimization-time scaling (Theorem 2)."""

import pytest

from repro.optimizer import (
    CSOptimizer,
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    VariableElimination,
)
from repro.datagen import linear_view, multistar_view, star_view


def _spec(view, query_var=None):
    return QuerySpec(
        tables=view.tables,
        query_vars=(query_var or view.chain_variables[0],),
    )


class TestGreedyConservativeGuarantee:
    """CS+ returns a plan no worse than the single-root-GroupBy plan
    (Chaudhuri & Shim's guarantee, retained by the MPF extension)."""

    @pytest.mark.parametrize("kind", ["star", "multistar", "linear"])
    def test_csplus_never_worse_than_cs(self, synthetic_views, kind):
        view = synthetic_views[kind]
        spec = _spec(view)
        cs = CSOptimizer().optimize(spec, view.catalog)
        csplus = CSPlusLinear().optimize(spec, view.catalog)
        assert csplus.cost <= cs.cost + 1e-9

    def test_nonlinear_never_worse_than_linear(self, synthetic_views):
        for view in synthetic_views.values():
            spec = _spec(view)
            linear = CSPlusLinear().optimize(spec, view.catalog)
            nonlinear = CSPlusNonlinear().optimize(spec, view.catalog)
            assert nonlinear.cost <= linear.cost + 1e-9

    def test_supply_chain_ordering(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        cs = CSOptimizer().optimize(spec, sc.catalog)
        csplus = CSPlusLinear().optimize(spec, sc.catalog)
        nonlinear = CSPlusNonlinear().optimize(spec, sc.catalog)
        assert nonlinear.cost <= csplus.cost <= cs.cost


class TestInclusionRelationships:
    """Theorem 1 / Theorem 3, checked as cost dominance: plans found in
    the smaller space never beat the optimum of the enclosing one."""

    @pytest.mark.parametrize("kind", ["star", "multistar", "linear"])
    @pytest.mark.parametrize(
        "heuristic", ["degree", "width", "elim_cost"]
    )
    def test_ve_within_csplus(self, synthetic_views, kind, heuristic):
        view = synthetic_views[kind]
        spec = _spec(view)
        optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
        ve = VariableElimination(heuristic).optimize(spec, view.catalog).cost
        assert optimum <= ve + 1e-9

    @pytest.mark.parametrize("kind", ["star", "multistar", "linear"])
    @pytest.mark.parametrize("heuristic", ["degree", "width", "elim_cost"])
    def test_extension_never_degrades(self, synthetic_views, kind, heuristic):
        """Theorem 3's practical content: VE+ ≤ VE in plan cost."""
        view = synthetic_views[kind]
        spec = _spec(view)
        plain = VariableElimination(heuristic).optimize(spec, view.catalog)
        extended = VariableElimination(heuristic, extended=True).optimize(
            spec, view.catalog
        )
        assert extended.cost <= plain.cost + 1e-9

    @pytest.mark.parametrize("kind", ["star", "multistar", "linear"])
    def test_extended_ve_reaches_csplus_optimum(self, kind):
        """The Table 2 observation: at the paper's exact configuration
        (N=5 tables, domain size 10), extended VE attains the
        nonlinear-CS+ optimum for every heuristic."""
        maker = {
            "star": star_view,
            "multistar": multistar_view,
            "linear": linear_view,
        }[kind]
        view = maker(n_tables=5, domain_size=10)
        spec = _spec(view)
        optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
        for heuristic in ("degree", "width", "elim_cost"):
            extended = VariableElimination(
                heuristic, extended=True
            ).optimize(spec, view.catalog)
            assert extended.cost == pytest.approx(optimum, rel=1e-9)

    def test_supply_chain_inclusion(self, tiny_supply_chain):
        sc = tiny_supply_chain
        for qv in ("wid", "cid", "tid", "sid", "pid"):
            spec = QuerySpec(tables=sc.tables, query_vars=(qv,))
            optimum = CSPlusNonlinear().optimize(spec, sc.catalog).cost
            for heuristic in ("degree", "width"):
                plain = VariableElimination(heuristic).optimize(
                    spec, sc.catalog
                )
                ext = VariableElimination(heuristic, extended=True).optimize(
                    spec, sc.catalog
                )
                assert optimum <= ext.cost + 1e-9 <= plain.cost + 2e-9


class TestDegreeCatastropheOnStar:
    """Section 7.3's headline: plain degree eliminates the hub first on
    the star view, joining every base table with no GDL optimization."""

    def test_degree_picks_hub_first(self):
        view = star_view(n_tables=5, domain_size=10)
        spec = _spec(view)
        result = VariableElimination("degree").optimize(spec, view.catalog)
        assert result.extras["elimination_order"][0] == "h0"

    def test_degree_catastrophic_vs_width(self):
        view = star_view(n_tables=5, domain_size=10)
        spec = _spec(view)
        degree = VariableElimination("degree").optimize(spec, view.catalog)
        width = VariableElimination("width").optimize(spec, view.catalog)
        assert degree.cost > 100 * width.cost

    def test_extension_rescues_degree(self):
        view = star_view(n_tables=5, domain_size=10)
        spec = _spec(view)
        optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
        rescued = VariableElimination("degree", extended=True).optimize(
            spec, view.catalog
        )
        assert rescued.cost == pytest.approx(optimum, rel=1e-9)

    def test_width_fine_on_star(self):
        view = star_view(n_tables=5, domain_size=10)
        spec = _spec(view)
        optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
        width = VariableElimination("width").optimize(spec, view.catalog)
        assert width.cost <= 3 * optimum


class TestOptimizationEffort:
    """Theorem 2's shape: VE considers far fewer plans than CS+ when
    average connectivity is low, and CS+ effort grows fast with N."""

    def test_ve_considers_fewer_plans_than_csplus(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        ve = VariableElimination("degree").optimize(spec, sc.catalog)
        csplus = CSPlusNonlinear().optimize(spec, sc.catalog)
        assert ve.plans_considered < csplus.plans_considered / 3

    def test_csplus_effort_grows_with_n(self):
        small = linear_view(n_tables=4, domain_size=4)
        large = linear_view(n_tables=7, domain_size=4)
        effort = {}
        for view in (small, large):
            spec = _spec(view)
            effort[len(view.tables)] = CSPlusNonlinear().optimize(
                spec, view.catalog
            ).plans_considered
        assert effort[7] > 6 * effort[4]

    def test_ve_effort_grows_slowly_with_n(self):
        small = linear_view(n_tables=4, domain_size=4)
        large = linear_view(n_tables=8, domain_size=4)
        effort = {}
        for view in (small, large):
            spec = _spec(view)
            effort[len(view.tables)] = VariableElimination("degree").optimize(
                spec, view.catalog
            ).plans_considered
        assert effort[8] <= 4 * effort[4]


class TestNonlinearity:
    def test_ve_produces_nonlinear_plans(self):
        """On the multistar view the VE plan is naturally bushy."""
        view = multistar_view(n_tables=5, domain_size=5)
        spec = _spec(view, view.chain_variables[2])
        result = VariableElimination("width").optimize(spec, view.catalog)
        assert not result.plan.is_linear()

    def test_linear_csplus_produces_linear_plans(self, synthetic_views):
        for view in synthetic_views.values():
            spec = _spec(view)
            result = CSPlusLinear().optimize(spec, view.catalog)
            assert result.plan.is_linear()
