"""Every optimizer's plan must compute the right answer.

The oracle is the naive plan: join everything, aggregate once.  All
algorithms, all query forms, several semirings, random schemas.
"""

from functools import reduce

import numpy as np
import pytest

from repro.algebra import marginalize, product_join, restrict
from repro.catalog import Catalog
from repro.data import complete_relation, random_relation, var
from repro.optimizer import (
    CSOptimizer,
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    VariableElimination,
)
from repro.plans import execute
from repro.semiring import BOOLEAN, MAX_PRODUCT, MIN_SUM, SUM_PRODUCT

ALL_OPTIMIZERS = [
    CSOptimizer(),
    CSPlusLinear(),
    CSPlusNonlinear(),
    VariableElimination("degree"),
    VariableElimination("width"),
    VariableElimination("elim_cost"),
    VariableElimination("degree", extended=True),
    VariableElimination("width", extended=True),
    VariableElimination("elim_cost", extended=True),
    VariableElimination("degree+width"),
    VariableElimination("degree+elim_cost", extended=True),
    VariableElimination("random", seed=0),
    VariableElimination("random", extended=True, seed=1),
]

_IDS = [getattr(o, "algorithm") for o in ALL_OPTIMIZERS]


def _oracle(catalog, tables, query_vars, selections, semiring):
    relations = [catalog.relation(t) for t in tables]
    joint = reduce(lambda a, b: product_join(a, b, semiring), relations)
    if selections:
        joint = restrict(joint, selections)
    return marginalize(joint, query_vars, semiring)


def _random_schema(seed):
    """A random multi-table schema with overlapping variable scopes."""
    rng = np.random.default_rng(seed)
    n_vars = int(rng.integers(3, 6))
    variables = [var(f"x{i}", int(rng.integers(2, 4))) for i in range(n_vars)]
    n_tables = int(rng.integers(2, 5))
    catalog = Catalog()
    names = []
    for t in range(n_tables):
        arity = int(rng.integers(1, min(3, n_vars) + 1))
        chosen = rng.choice(n_vars, size=arity, replace=False)
        scope = [variables[i] for i in sorted(chosen)]
        density = float(rng.uniform(0.4, 1.0))
        rel = random_relation(scope, density, rng, name=f"t{t}")
        names.append(catalog.register(rel))
    # Make sure the schema is connected enough to be interesting:
    # always add one relation covering two random variables.
    if n_vars >= 2:
        extra_scope = [variables[0], variables[-1]]
        catalog.register(
            random_relation(extra_scope, 0.8, rng, name="bridge")
        )
        names.append("bridge")
    covered = sorted(
        {v for t in names for v in catalog.stats(t).variables}
    )
    return catalog, names, covered, rng


@pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=_IDS)
def test_basic_query_matches_oracle(optimizer, tiny_supply_chain):
    sc = tiny_supply_chain
    spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
    result = optimizer.optimize(spec, sc.catalog)
    got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
    expected = _oracle(sc.catalog, sc.tables, ("wid",), {}, SUM_PRODUCT)
    assert got.equals(expected, SUM_PRODUCT)


@pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=_IDS)
def test_restricted_answer_matches_oracle(optimizer, tiny_supply_chain):
    sc = tiny_supply_chain
    spec = QuerySpec(
        tables=sc.tables, query_vars=("wid",), selections={"wid": 1}
    )
    result = optimizer.optimize(spec, sc.catalog)
    got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
    expected = _oracle(sc.catalog, sc.tables, ("wid",), {"wid": 1}, SUM_PRODUCT)
    assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


@pytest.mark.parametrize("optimizer", ALL_OPTIMIZERS, ids=_IDS)
def test_constrained_domain_matches_oracle(optimizer, tiny_supply_chain):
    sc = tiny_supply_chain
    spec = QuerySpec(
        tables=sc.tables, query_vars=("cid",), selections={"tid": 1}
    )
    result = optimizer.optimize(spec, sc.catalog)
    got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
    expected = _oracle(sc.catalog, sc.tables, ("cid",), {"tid": 1}, SUM_PRODUCT)
    assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


@pytest.mark.parametrize(
    "semiring", [SUM_PRODUCT, MIN_SUM, MAX_PRODUCT], ids=lambda s: s.name
)
@pytest.mark.parametrize(
    "optimizer",
    [CSPlusNonlinear(), VariableElimination("degree", extended=True)],
    ids=["cs+nl", "ve+"],
)
def test_semiring_generality(optimizer, semiring, tiny_supply_chain):
    """The same plan is correct under any semiring (GDL genericity)."""
    sc = tiny_supply_chain
    spec = QuerySpec(tables=sc.tables, query_vars=("pid",))
    result = optimizer.optimize(spec, sc.catalog)
    got, _ = execute(result.plan, sc.catalog, semiring)
    expected = _oracle(sc.catalog, sc.tables, ("pid",), {}, semiring)
    assert got.equals(expected, semiring)


@pytest.mark.parametrize("seed", range(12))
def test_random_schemas_all_optimizers_agree(seed):
    catalog, tables, variables, rng = _random_schema(seed)
    query_var = variables[int(rng.integers(0, len(variables)))]
    spec = QuerySpec(tables=tuple(tables), query_vars=(query_var,))
    expected = _oracle(catalog, tables, (query_var,), {}, SUM_PRODUCT)
    for optimizer in ALL_OPTIMIZERS[:8]:
        result = optimizer.optimize(spec, catalog)
        got, _ = execute(result.plan, catalog, SUM_PRODUCT)
        assert got.equals(expected, SUM_PRODUCT), (
            f"{optimizer.algorithm} wrong on seed {seed}"
        )


@pytest.mark.parametrize("seed", range(6))
def test_random_schemas_multi_variable_queries(seed):
    catalog, tables, variables, rng = _random_schema(seed + 100)
    k = min(2, len(variables))
    chosen = tuple(
        variables[i] for i in rng.choice(len(variables), size=k, replace=False)
    )
    spec = QuerySpec(tables=tuple(tables), query_vars=chosen)
    expected = _oracle(catalog, tables, chosen, {}, SUM_PRODUCT)
    for optimizer in (CSPlusNonlinear(), VariableElimination("degree", extended=True)):
        result = optimizer.optimize(spec, catalog)
        got, _ = execute(result.plan, catalog, SUM_PRODUCT)
        assert got.equals(expected, SUM_PRODUCT)


def test_boolean_semiring_end_to_end(rng):
    """Reachability-style query on the boolean semiring."""
    a, b, c = var("a", 3), var("b", 3), var("c", 3)
    r1 = complete_relation(
        [a, b], measure_fn=lambda cols: (cols["a"] + cols["b"]) % 2 == 0
    ).with_name("r1")
    r2 = complete_relation(
        [b, c], measure_fn=lambda cols: cols["b"] >= cols["c"]
    ).with_name("r2")
    r1 = r1.with_measure(r1.measure.astype(bool))
    r2 = r2.with_measure(r2.measure.astype(bool))
    catalog = Catalog()
    catalog.register_all([r1, r2])
    spec = QuerySpec(tables=("r1", "r2"), query_vars=("a",))
    result = CSPlusNonlinear().optimize(spec, catalog)
    got, _ = execute(result.plan, catalog, BOOLEAN)
    expected = _oracle(catalog, ("r1", "r2"), ("a",), {}, BOOLEAN)
    assert got.equals(expected, BOOLEAN)


def test_single_table_query(tiny_supply_chain):
    sc = tiny_supply_chain
    spec = QuerySpec(tables=("ctdeals",), query_vars=("cid",))
    for optimizer in (CSOptimizer(), VariableElimination("degree")):
        result = optimizer.optimize(spec, sc.catalog)
        got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
        expected = marginalize(
            sc.catalog.relation("ctdeals"), ["cid"], SUM_PRODUCT
        )
        assert got.equals(expected, SUM_PRODUCT)


def test_empty_group_by_total_mass(tiny_supply_chain):
    sc = tiny_supply_chain
    spec = QuerySpec(tables=sc.tables, query_vars=())
    result = VariableElimination("degree").optimize(spec, sc.catalog)
    got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
    expected = _oracle(sc.catalog, sc.tables, (), {}, SUM_PRODUCT)
    assert got.arity == 0
    assert np.isclose(got.measure[0], expected.measure[0], rtol=1e-9)
