"""Unit tests for the Eq. 1 plan-linearity test (Section 5.1)."""

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.optimizer import linearity_test


class TestEquationOne:
    def test_paper_q1_values(self):
        """The paper's worked numbers: σ_cid=1000, σ̂_cid=5000 fails the
        inequality; σ_tid=σ̂_tid=500 satisfies it."""
        import math

        sigma, sigma_hat = 1000.0, 5000.0
        lhs = sigma**2 + sigma_hat * math.log2(sigma_hat)
        rhs = sigma * sigma_hat
        assert lhs < rhs  # nonlinear recommended for Q1 (cid)

        sigma = sigma_hat = 500.0
        lhs = sigma**2 + sigma_hat * math.log2(sigma_hat)
        rhs = sigma * sigma_hat
        assert lhs >= rhs  # linear admissible for Q2 (tid)

    def test_full_scale_catalog_directions(self):
        """At Table 1 scale the catalog-driven test reproduces the
        paper's verdicts without generating the data."""
        from repro.optimizer.linearity import LinearityTest

        q1 = LinearityTest("cid", sigma=1000, sigma_hat=5000,
                           linear_admissible=False)
        assert q1.lhs < q1.rhs
        q2 = LinearityTest("tid", sigma=500, sigma_hat=500,
                           linear_admissible=True)
        assert q2.lhs >= q2.rhs

    def test_catalog_integration(self, tiny_supply_chain):
        sc = tiny_supply_chain
        result = linearity_test(sc.catalog, "tid")
        assert result.variable == "tid"
        assert result.sigma == sc.catalog.variable("tid").size
        assert result.sigma_hat == sc.catalog.stats("transporters").cardinality
        # tid's smallest relation is transporters with σ̂ = σ: linear OK.
        assert result.linear_admissible

    def test_small_domain_in_big_table_wants_nonlinear(self):
        """A tiny-domain variable living only in large relations fails
        Eq. 1 — the situation where nonlinear reduction pays off."""
        cat = Catalog()
        # Needs σ_x > log2(σ̂_x) for the inequality to flip: x of
        # domain 20 inside 6000-row relations qualifies.
        x, y = var("x", 20), var("y", 300)
        cat.register(complete_relation([x, y], name="big1"))
        cat.register(complete_relation([x, y], name="big2").with_name("big2"))
        result = linearity_test(cat, "x")
        assert not result.linear_admissible

    def test_str_rendering(self, tiny_supply_chain):
        text = str(linearity_test(tiny_supply_chain.catalog, "tid"))
        assert "tid" in text
        assert "linear admissible" in text or "nonlinear" in text
