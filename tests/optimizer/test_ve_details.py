"""VE internals: Proposition 1 pruning, elimination-order reporting,
and QuerySpec validation."""

import pytest

from repro.errors import OptimizationError
from repro.optimizer import (
    QuerySpec,
    VariableElimination,
    fd_prunable_variables,
)
from repro.optimizer.base import OptimizationResult


class TestQuerySpec:
    def test_requires_tables(self):
        with pytest.raises(OptimizationError):
            QuerySpec(tables=(), query_vars=("x",))

    def test_rejects_duplicate_tables(self):
        with pytest.raises(OptimizationError):
            QuerySpec(tables=("a", "a"), query_vars=())

    def test_unknown_query_variable(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("ghost",))
        with pytest.raises(OptimizationError):
            VariableElimination().optimize(spec, sc.catalog)


class TestFDPruning:
    def test_prunable_detection(self):
        table_vars = {"w": ("wid", "cid"), "t": ("tid",)}
        table_keys = {"w": ("wid",), "t": ("tid",)}
        prunable = fd_prunable_variables(table_vars, table_keys)
        assert prunable == {"cid"}

    def test_default_maximal_fd_disables_pruning(self):
        table_vars = {"w": ("wid", "cid")}
        assert fd_prunable_variables(table_vars, {}) == frozenset()

    def test_partial_key_declarations(self):
        table_vars = {"w": ("wid", "cid"), "ct": ("cid", "tid")}
        table_keys = {"w": ("wid",)}
        # cid appears in ct's (undeclared, hence maximal) key.
        assert fd_prunable_variables(table_vars, table_keys) == frozenset()

    def test_prunable_variables_eliminated_first(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("pid",))
        # Declare every table's key so some non-key variable exists:
        # warehouses' key is wid, so cid is determined... but cid also
        # appears in ctdeals (maximal FD) — declare that one too.
        keys = {
            "warehouses": ("wid",),
            "transporters": ("tid",),
            "ctdeals": ("cid", "tid"),
            "contracts": ("pid", "sid"),
            "location": ("pid", "wid"),
        }
        prunable = fd_prunable_variables(
            {t: sc.catalog.stats(t).variables for t in sc.tables}, keys
        )
        assert prunable == frozenset()  # every var is in some key here

    def test_result_correct_with_keys(self, tiny_supply_chain):
        from repro.plans import execute
        from repro.semiring import SUM_PRODUCT
        from repro.algebra import marginalize, product_join
        from functools import reduce

        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        ve = VariableElimination("degree", table_keys=sc.table_keys)
        result = ve.optimize(spec, sc.catalog)
        got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
        joint = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            [sc.catalog.relation(t) for t in sc.tables],
        )
        assert got.equals(marginalize(joint, ["wid"], SUM_PRODUCT), SUM_PRODUCT)


class TestReporting:
    def test_elimination_order_covers_nonquery_vars(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        result = VariableElimination("degree").optimize(spec, sc.catalog)
        order = result.extras["elimination_order"]
        assert "wid" not in order
        assert set(order) <= {"pid", "sid", "cid", "tid"}

    def test_result_fields(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        result = VariableElimination("width").optimize(spec, sc.catalog)
        assert isinstance(result, OptimizationResult)
        assert result.algorithm == "ve(width)"
        assert result.cost > 0
        assert result.plans_considered > 0
        assert result.planning_seconds >= 0

    def test_algorithm_names(self):
        assert VariableElimination("degree").algorithm == "ve(degree)"
        assert (
            VariableElimination("degree", extended=True).algorithm
            == "ve(degree)+ext"
        )
