"""Unit tests for the joinplan dynamic programs."""

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, var
from repro.errors import OptimizationError
from repro.optimizer import QuerySpec
from repro.optimizer.base import PlanContext
from repro.optimizer.joinplan import bushy_dp, linear_dp


@pytest.fixture
def context(rng):
    a, b, c, d = var("a", 4), var("b", 6), var("c", 3), var("d", 2)
    cat = Catalog()
    cat.register(complete_relation([a, b], rng=rng, name="t0"))
    cat.register(complete_relation([b, c], rng=rng, name="t1"))
    cat.register(complete_relation([c, d], rng=rng, name="t2"))
    spec = QuerySpec(tables=("t0", "t1", "t2"), query_vars=("a",))
    return PlanContext(spec, cat)


class TestLinearDP:
    def test_empty_set_rejected(self, context):
        with pytest.raises(OptimizationError):
            linear_dp([], context)

    def test_single_item_is_identity(self, context):
        leaf = context.leaf("t0")
        assert linear_dp([leaf], context) is leaf

    def test_joins_all_items(self, context):
        leaves = [context.leaf(t) for t in ("t0", "t1", "t2")]
        plan = linear_dp(leaves, context)
        assert set(plan.plan.base_tables()) == {"t0", "t1", "t2"}
        assert plan.plan.is_linear()

    def test_groupbys_only_when_enabled(self, context):
        from repro.plans import GroupBy

        leaves = [context.leaf(t) for t in ("t0", "t1", "t2")]
        plain = linear_dp(leaves, context, use_groupbys=False)
        assert plain.plan.count_nodes(GroupBy) == 0

    def test_groupby_variant_never_costlier(self, context):
        leaves = [context.leaf(t) for t in ("t0", "t1", "t2")]
        plain = linear_dp(leaves, context, use_groupbys=False)
        capped = linear_dp(
            leaves, context,
            outside_needed=frozenset({"a"}), use_groupbys=True,
        )
        assert capped.cost <= plain.cost + 1e-9

    def test_outside_needed_variables_survive(self, context):
        leaves = [context.leaf(t) for t in ("t0", "t1", "t2")]
        result = linear_dp(
            leaves, context,
            outside_needed=frozenset({"a", "d"}), use_groupbys=True,
        )
        assert {"a", "d"} <= set(result.stats.var_sizes)


class TestBushyDP:
    def test_empty_set_rejected(self, context):
        with pytest.raises(OptimizationError):
            bushy_dp([], context)

    def test_single_item_is_identity(self, context):
        leaf = context.leaf("t1")
        assert bushy_dp([leaf], context) is leaf

    def test_never_costlier_than_linear(self, context):
        leaves = [context.leaf(t) for t in ("t0", "t1", "t2")]
        linear = linear_dp(
            leaves, context,
            outside_needed=frozenset({"a"}), use_groupbys=True,
        )
        bushy = bushy_dp(
            leaves, context,
            outside_needed=frozenset({"a"}), use_groupbys=True,
        )
        # On 3 items bushy includes every linear order, so dominance
        # holds exactly here (the general caveat needs ≥4 items).
        assert bushy.cost <= linear.cost + 1e-9

    def test_two_items_equal_linear(self, context):
        # Same cap setting on both sides (bushy defaults groupbys on).
        leaves = [context.leaf(t) for t in ("t0", "t1")]
        assert bushy_dp(
            leaves, context, use_groupbys=False
        ).cost == pytest.approx(linear_dp(leaves, context).cost)
