"""Property-based optimizer tests over hypothesis-generated schemas.

Each property is an invariant the Section 5 analysis promises:
optimizer plans compute the oracle answer, CS+ dominates CS, the
extension never degrades VE, and plan structure respects the semantic
correctness condition.
"""

from functools import reduce

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import marginalize, product_join, restrict
from repro.catalog import Catalog
from repro.data import FunctionalRelation, var
from repro.optimizer import (
    CSOptimizer,
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    VariableElimination,
)
from repro.plans import GroupBy, execute
from repro.semiring import SUM_PRODUCT


@st.composite
def schema_and_query(draw):
    """A random connected-ish schema, its catalog, and a query spec."""
    n_vars = draw(st.integers(3, 5))
    sizes = [draw(st.integers(2, 4)) for _ in range(n_vars)]
    variables = [var(f"x{i}", sizes[i]) for i in range(n_vars)]

    n_tables = draw(st.integers(2, 4))
    catalog = Catalog()
    names = []
    for t in range(n_tables):
        arity = draw(st.integers(1, min(3, n_vars)))
        chosen = sorted(
            draw(
                st.lists(
                    st.integers(0, n_vars - 1),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
        )
        scope = [variables[i] for i in chosen]
        total = 1
        for v in scope:
            total *= v.size
        n_rows = draw(st.integers(1, total))
        flat = draw(
            st.lists(
                st.integers(0, total - 1),
                min_size=n_rows,
                max_size=n_rows,
                unique=True,
            )
        )
        columns = {}
        remaining = np.asarray(flat, dtype=np.int64)
        divisor = total
        for v in scope:
            divisor //= v.size
            columns[v.name] = (remaining // divisor) % v.size
        measure = np.asarray(
            draw(
                st.lists(
                    st.floats(0.01, 10.0, allow_nan=False),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            )
        )
        rel = FunctionalRelation(scope, columns, measure, name=f"t{t}")
        names.append(catalog.register(rel))

    covered = sorted({v for t in names for v in catalog.stats(t).variables})
    query_var = draw(st.sampled_from(covered))
    use_selection = draw(st.booleans())
    selections = {}
    if use_selection and len(covered) > 1:
        sel_var = draw(st.sampled_from(covered))
        sel_size = catalog.variable(sel_var).size
        selections[sel_var] = draw(st.integers(0, sel_size - 1))
    spec = QuerySpec(
        tables=tuple(names), query_vars=(query_var,), selections=selections
    )
    return catalog, spec


def _oracle(catalog, spec):
    relations = [catalog.relation(t) for t in spec.tables]
    joint = reduce(lambda a, b: product_join(a, b, SUM_PRODUCT), relations)
    if spec.selections:
        joint = restrict(joint, spec.selections)
    return marginalize(joint, spec.query_vars, SUM_PRODUCT)


@given(schema_and_query())
@settings(max_examples=40, deadline=None)
def test_csplus_nonlinear_matches_oracle(case):
    catalog, spec = case
    result = CSPlusNonlinear().optimize(spec, catalog)
    got, _ = execute(result.plan, catalog, SUM_PRODUCT)
    assert got.equals(
        _oracle(catalog, spec), SUM_PRODUCT, ignore_zero_rows=True
    )


@given(schema_and_query())
@settings(max_examples=40, deadline=None)
def test_ve_extended_matches_oracle(case):
    catalog, spec = case
    result = VariableElimination("degree", extended=True).optimize(
        spec, catalog
    )
    got, _ = execute(result.plan, catalog, SUM_PRODUCT)
    assert got.equals(
        _oracle(catalog, spec), SUM_PRODUCT, ignore_zero_rows=True
    )


@given(schema_and_query())
@settings(max_examples=40, deadline=None)
def test_cost_dominance_chain(case):
    """cs+nonlinear ≤ cs+linear ≤ cs, and VE+ ≤ VE, in estimated cost."""
    catalog, spec = case
    cs = CSOptimizer().optimize(spec, catalog).cost
    linear = CSPlusLinear().optimize(spec, catalog).cost
    nonlinear = CSPlusNonlinear().optimize(spec, catalog).cost
    assert nonlinear <= linear + 1e-9 <= cs + 2e-9

    for heuristic in ("degree", "width"):
        plain = VariableElimination(heuristic).optimize(spec, catalog).cost
        ext = VariableElimination(heuristic, extended=True).optimize(
            spec, catalog
        ).cost
        assert ext <= plain + 1e-9


@given(schema_and_query())
@settings(max_examples=40, deadline=None)
def test_interior_groupbys_respect_correctness_condition(case):
    """Every GroupBy in a CS+ plan retains the query variables and the
    variables of every base table not yet joined beneath it."""
    catalog, spec = case
    plan = CSPlusNonlinear().optimize(spec, catalog).plan
    table_vars = {
        t: set(catalog.stats(t).variables) for t in spec.tables
    }

    def check(node, tables_outside):
        if isinstance(node, GroupBy):
            kept = set(node.group_names)
            needed = set(spec.query_vars)
            for t in tables_outside:
                needed |= table_vars[t]
            produced = set()
            for t in node.base_tables():
                produced |= table_vars[t]
            assert needed & produced <= kept | (needed - produced)
        for child in node.children():
            inside = set(child.base_tables())
            outside = set(spec.tables) - inside
            check(child, outside)

    check(plan, set())


@given(schema_and_query())
@settings(max_examples=30, deadline=None)
def test_plans_considered_positive_and_bounded(case):
    catalog, spec = case
    n = len(spec.tables)
    result = CSPlusNonlinear().optimize(spec, catalog)
    assert result.plans_considered >= n - 1
    # Loose upper bound: 4 candidates per split, 3^n splits, plus leaves.
    assert result.plans_considered <= 8 * 3**n + 4 * n
