"""Tests for the exhaustive GDL optimizer and the greedy-gap ablation."""

from functools import reduce

import numpy as np
import pytest

from repro.algebra import marginalize, product_join
from repro.catalog import Catalog
from repro.data import random_relation, var
from repro.errors import OptimizationError
from repro.optimizer import (
    CSPlusNonlinear,
    ExhaustiveGDL,
    QuerySpec,
    VariableElimination,
)
from repro.plans import execute
from repro.semiring import SUM_PRODUCT


class TestOptimality:
    def test_lower_bounds_every_algorithm(self, synthetic_views):
        for view in synthetic_views.values():
            spec = QuerySpec(
                tables=view.tables, query_vars=(view.chain_variables[0],)
            )
            optimum = ExhaustiveGDL().optimize(spec, view.catalog).cost
            for opt in (
                CSPlusNonlinear(),
                VariableElimination("degree"),
                VariableElimination("width", extended=True),
            ):
                assert optimum <= opt.optimize(spec, view.catalog).cost + 1e-9

    def test_table2_views_greedy_is_optimal(self):
        """On the paper's Table 2 configuration the greedy CS+ rule
        happens to find the true optimum — the Table 2 'optimal'
        column really is optimal."""
        from repro.datagen import linear_view, multistar_view, star_view

        for maker in (star_view, multistar_view, linear_view):
            view = maker(n_tables=5, domain_size=10)
            spec = QuerySpec(
                tables=view.tables, query_vars=(view.chain_variables[0],)
            )
            exhaustive = ExhaustiveGDL().optimize(spec, view.catalog)
            greedy = CSPlusNonlinear().optimize(spec, view.catalog)
            assert greedy.cost == pytest.approx(exhaustive.cost, rel=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_gap_small_on_random_schemas(self, seed):
        rng = np.random.default_rng(seed)
        n_vars = int(rng.integers(3, 5))
        variables = [var(f"x{i}", int(rng.integers(2, 5)))
                     for i in range(n_vars)]
        catalog = Catalog()
        names = []
        for t in range(int(rng.integers(2, 5))):
            arity = int(rng.integers(1, 3))
            chosen = sorted(rng.choice(n_vars, size=arity, replace=False))
            rel = random_relation(
                [variables[i] for i in chosen],
                float(rng.uniform(0.5, 1.0)),
                rng,
                name=f"t{t}",
            )
            names.append(catalog.register(rel))
        covered = sorted({v for t in names
                          for v in catalog.stats(t).variables})
        spec = QuerySpec(tables=tuple(names), query_vars=(covered[0],))
        exhaustive = ExhaustiveGDL().optimize(spec, catalog)
        greedy = CSPlusNonlinear().optimize(spec, catalog)
        assert exhaustive.cost <= greedy.cost + 1e-9
        # The paper's caveat materialized: greedy can miss the optimum,
        # but on small schemas the gap stays modest.
        assert greedy.cost <= 2.0 * exhaustive.cost

    def test_exhaustive_plan_is_correct(self, tiny_supply_chain):
        sc = tiny_supply_chain
        spec = QuerySpec(tables=sc.tables, query_vars=("cid",))
        result = ExhaustiveGDL().optimize(spec, sc.catalog)
        got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
        joint = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            [sc.catalog.relation(t) for t in sc.tables],
        )
        expected = marginalize(joint, ["cid"], SUM_PRODUCT)
        assert got.equals(expected, SUM_PRODUCT)


class TestLimits:
    def test_table_cap(self):
        spec = QuerySpec(tables=tuple(f"t{i}" for i in range(12)),
                         query_vars=())
        catalog = Catalog()
        for i in range(12):
            catalog.register(
                random_relation([var("x", 2)], 1.0,
                                np.random.default_rng(i), name=f"t{i}")
            )
        with pytest.raises(OptimizationError):
            ExhaustiveGDL().optimize(spec, catalog)

    def test_variable_cap(self):
        catalog = Catalog()
        variables = [var(f"v{i}", 2) for i in range(16)]
        catalog.register(
            random_relation(variables[:8], 0.01,
                            np.random.default_rng(0), name="a")
        )
        catalog.register(
            random_relation(variables[8:], 0.01,
                            np.random.default_rng(1), name="b")
        )
        spec = QuerySpec(tables=("a", "b"), query_vars=("v0",))
        with pytest.raises(OptimizationError):
            ExhaustiveGDL().optimize(spec, catalog)
