"""Unit tests for cardinality estimation."""

import pytest

from repro.catalog import Catalog, TableStats
from repro.cost import group_stats, join_stats, select_stats
from repro.data import complete_relation, var


def _stats(name, card, sizes, distinct=None):
    distinct = distinct or {k: float(min(card, v)) for k, v in sizes.items()}
    return TableStats(name, card, sizes, distinct)


class TestJoinStats:
    def test_complete_relations_exact(self):
        """For complete relations the estimate is exact: the join is
        complete over the union of domains."""
        s1 = _stats("s1", 12, {"a": 3, "b": 4})
        s2 = _stats("s2", 8, {"b": 4, "c": 2})
        out = join_stats(s1, s2)
        assert out.cardinality == 24  # 3 * 4 * 2

    def test_matches_actual_join(self, rng):
        from repro.algebra import product_join
        from repro.semiring import SUM_PRODUCT

        a, b, c = var("a", 3), var("b", 4), var("c", 2)
        r1 = complete_relation([a, b], rng=rng, name="r1")
        r2 = complete_relation([b, c], rng=rng, name="r2")
        cat = Catalog()
        cat.register_all([r1, r2])
        est = join_stats(cat.stats("r1"), cat.stats("r2"))
        actual = product_join(r1, r2, SUM_PRODUCT)
        assert est.cardinality == actual.ntuples

    def test_cross_product(self):
        s1 = _stats("s1", 5, {"a": 5})
        s2 = _stats("s2", 7, {"z": 7})
        assert join_stats(s1, s2).cardinality == 35

    def test_shared_distinct_takes_min(self):
        s1 = _stats("s1", 10, {"a": 10, "b": 20}, {"a": 10.0, "b": 10.0})
        s2 = _stats("s2", 5, {"b": 20, "c": 5}, {"b": 5.0, "c": 5.0})
        out = join_stats(s1, s2)
        assert out.distinct["b"] == 5.0

    def test_output_distinct_capped_by_cardinality(self):
        s1 = _stats("s1", 2, {"a": 100}, {"a": 2.0})
        s2 = _stats("s2", 2, {"a": 100, "b": 100}, {"a": 2.0, "b": 2.0})
        out = join_stats(s1, s2)
        for d in out.distinct.values():
            assert d <= out.cardinality

    def test_never_below_one(self):
        s1 = _stats("s1", 1, {"a": 1000}, {"a": 1.0})
        s2 = _stats("s2", 1, {"a": 1000}, {"a": 1.0})
        assert join_stats(s1, s2).cardinality >= 1


class TestGroupStats:
    def test_bounded_by_input(self):
        s = _stats("s", 10, {"a": 100}, {"a": 10.0})
        assert group_stats(s, ["a"]).cardinality == 10

    def test_bounded_by_distinct_product(self):
        s = _stats("s", 1000, {"a": 3, "b": 4}, {"a": 3.0, "b": 4.0})
        assert group_stats(s, ["a", "b"]).cardinality == 12

    def test_empty_group(self):
        s = _stats("s", 1000, {"a": 3}, {"a": 3.0})
        out = group_stats(s, [])
        assert out.cardinality == 1
        assert out.var_sizes == {}

    def test_unknown_vars_ignored(self):
        s = _stats("s", 10, {"a": 3}, {"a": 3.0})
        out = group_stats(s, ["a", "ghost"])
        assert list(out.var_sizes) == ["a"]


class TestSelectStats:
    def test_uniform_shrink(self):
        s = _stats("s", 100, {"a": 10, "b": 10}, {"a": 10.0, "b": 10.0})
        out = select_stats(s, {"a": 3})
        assert out.cardinality == pytest.approx(10.0)
        assert out.distinct["a"] == 1.0

    def test_selection_on_absent_variable_is_noop(self):
        s = _stats("s", 100, {"a": 10}, {"a": 10.0})
        out = select_stats(s, {"z": 1})
        assert out.cardinality == 100

    def test_conjunctive(self):
        s = _stats("s", 100, {"a": 10, "b": 5}, {"a": 10.0, "b": 5.0})
        out = select_stats(s, {"a": 0, "b": 0})
        assert out.cardinality == pytest.approx(2.0)
