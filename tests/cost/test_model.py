"""Unit tests for the cost models."""

import math

from repro.catalog import TableStats
from repro.cost import IOCostModel, SimpleCostModel


def _stats(name, card, arity=2):
    sizes = {f"v{i}": 10 for i in range(arity)}
    distinct = {k: float(min(card, 10)) for k in sizes}
    return TableStats(name, card, sizes, distinct)


class TestSimpleCostModel:
    def test_join_is_product(self):
        m = SimpleCostModel()
        assert m.join_cost(_stats("l", 100), _stats("r", 50), _stats("o", 10)) == 5000

    def test_group_is_nlogn(self):
        m = SimpleCostModel()
        got = m.group_cost(_stats("c", 1024), _stats("o", 10))
        assert got == 1024 * math.log2(1024)

    def test_group_floor_at_two(self):
        m = SimpleCostModel()
        assert m.group_cost(_stats("c", 1), _stats("o", 1)) == 2.0

    def test_scan_free(self):
        m = SimpleCostModel()
        assert m.scan_cost(_stats("t", 10**6)) == 0.0

    def test_select_linear(self):
        m = SimpleCostModel()
        assert m.select_cost(_stats("c", 123), _stats("o", 1)) == 123


class TestIOCostModel:
    def test_join_counts_pages(self):
        m = IOCostModel(cpu_per_tuple=0.0)
        left, right, out = _stats("l", 10_000), _stats("r", 10_000), _stats("o", 100)
        cost = m.join_cost(left, right, out)
        assert cost == m._pages(left) + m._pages(right) + m._pages(out)

    def test_scan_counts_pages(self):
        m = IOCostModel()
        assert m.scan_cost(_stats("t", 100_000)) > m.scan_cost(_stats("t", 100))

    def test_cpu_term_matters(self):
        cheap = IOCostModel(cpu_per_tuple=0.0)
        pricey = IOCostModel(cpu_per_tuple=1.0)
        s = _stats("t", 10_000)
        assert pricey.join_cost(s, s, s) > cheap.join_cost(s, s, s)

    def test_bigger_input_costs_more(self):
        m = IOCostModel()
        small = m.group_cost(_stats("c", 100), _stats("o", 10))
        big = m.group_cost(_stats("c", 1_000_000), _stats("o", 10))
        assert big > small
