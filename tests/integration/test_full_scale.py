"""Full Table-1-scale capability check.

The paper's testbed held contracts=100K, location=1M, ctdeals=500K.
The vectorized engine handles that scale directly, so this test runs
the headline query against the exact Table 1 cardinalities — no
reduced-scale substitution — verifying row counts and internal
consistency (the full joint is too large to oracle, so we check the
invariants that don't require it).
"""

import numpy as np
import pytest

from repro.datagen import TABLE1_CARDINALITIES, supply_chain
from repro.optimizer import (
    CSPlusLinear,
    QuerySpec,
    VariableElimination,
    linearity_test,
)
from repro.plans import execute
from repro.semiring import SUM_PRODUCT


@pytest.fixture(scope="module")
def full_scale():
    return supply_chain(scale=1.0, seed=0)


class TestTable1Scale:
    def test_cardinalities_exact(self, full_scale):
        for table, expected in TABLE1_CARDINALITIES.items():
            assert full_scale.catalog.stats(table).cardinality == expected

    def test_q1_at_full_scale(self, full_scale):
        sc = full_scale
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        result = VariableElimination("degree", extended=True).optimize(
            spec, sc.catalog
        )
        answer, stats = execute(result.plan, sc.catalog, SUM_PRODUCT)
        assert answer.ntuples == 5000  # every warehouse participates
        assert np.isfinite(answer.measure).all()
        assert (answer.measure > 0).all()
        assert stats.page_reads > 2000  # the 1M-row location scan

    def test_total_mass_plan_invariant(self, full_scale):
        """Two different plans agree on the view's total mass."""
        sc = full_scale
        spec = QuerySpec(tables=sc.tables, query_vars=("tid",))
        ve = VariableElimination("width").optimize(spec, sc.catalog)
        linear = CSPlusLinear().optimize(spec, sc.catalog)
        a, _ = execute(ve.plan, sc.catalog, SUM_PRODUCT)
        b, _ = execute(linear.plan, sc.catalog, SUM_PRODUCT)
        assert a.equals(b, SUM_PRODUCT)

    def test_paper_linearity_numbers(self, full_scale):
        """At scale 1.0 the Eq. 1 inputs are the paper's own: σ_cid =
        1000, σ̂_cid = 5000 (fails); σ_tid = σ̂_tid = 500 (holds)."""
        q1 = linearity_test(full_scale.catalog, "cid")
        assert (q1.sigma, q1.sigma_hat) == (1000, 5000)
        assert not q1.linear_admissible
        q2 = linearity_test(full_scale.catalog, "tid")
        assert (q2.sigma, q2.sigma_hat) == (500, 500)
        assert q2.linear_admissible
