"""Integration tests pinning the paper's qualitative claims.

Each test corresponds to a statement made in the paper's text or shown
in a figure/table; the benchmark harness regenerates the full
tables/plots, these tests lock the *directions* in CI.
"""

import numpy as np
import pytest

from repro.datagen import linear_view, multistar_view, star_view, supply_chain
from repro.optimizer import (
    CSOptimizer,
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    VariableElimination,
    linearity_test,
)
from repro.plans import execute
from repro.semiring import SUM_PRODUCT


class TestSection7_4_CSComparison:
    """"the significant gains provided by the algorithms proposed here
    compared to the CS algorithm" (Figure 10 discussion)."""

    def test_cs_substantially_worse(self):
        sc = supply_chain(scale=0.01, seed=3)
        for query_var, factor in (("pid", 5.0), ("cid", 1.5)):
            spec = QuerySpec(tables=sc.tables, query_vars=(query_var,))
            cs = CSOptimizer().optimize(spec, sc.catalog)
            best = CSPlusNonlinear().optimize(spec, sc.catalog)
            assert cs.cost > factor * best.cost, query_var

    def test_cs_plan_shape_is_figure3(self):
        """CS yields joins only, with a single GroupBy at the root."""
        sc = supply_chain(scale=0.01, seed=3)
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        plan = CSOptimizer().optimize(spec, sc.catalog).plan
        from repro.plans import GroupBy

        assert isinstance(plan, GroupBy)
        assert plan.count_nodes(GroupBy) == 1

    def test_csplus_plan_shape_is_figure4(self):
        """CS+ inserts interior GroupBy nodes (Figure 4)."""
        sc = supply_chain(scale=0.01, seed=3)
        spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
        plan = CSPlusLinear().optimize(spec, sc.catalog).plan
        from repro.plans import GroupBy

        assert plan.count_nodes(GroupBy) > 1


class TestFigure7Directions:
    """Plan linearity: nonlinear plans help the cid query as ctdeals
    densifies; the tid query stays linear-optimal; Eq. 1 predicts
    both."""

    def test_eq1_verdicts_at_paper_scale(self):
        sc = supply_chain(scale=0.05, seed=0)
        q1 = linearity_test(sc.catalog, "cid")
        q2 = linearity_test(sc.catalog, "tid")
        assert not q1.linear_admissible
        assert q2.linear_admissible

    def test_nonlinear_beats_linear_on_cid_at_high_density(self):
        sc = supply_chain(scale=0.02, seed=0, ctdeals_density=1.0)
        spec = QuerySpec(tables=sc.tables, query_vars=("cid",))
        linear = CSPlusLinear().optimize(spec, sc.catalog)
        nonlinear = CSPlusNonlinear().optimize(spec, sc.catalog)
        assert nonlinear.cost < linear.cost

    def test_linear_matches_nonlinear_on_tid(self):
        """"the Q2 running times for both plans coincide"."""
        sc = supply_chain(scale=0.02, seed=0, ctdeals_density=1.0)
        spec = QuerySpec(tables=sc.tables, query_vars=("tid",))
        linear = CSPlusLinear().optimize(spec, sc.catalog)
        nonlinear = CSPlusNonlinear().optimize(spec, sc.catalog)
        assert nonlinear.cost == pytest.approx(linear.cost, rel=0.05)


class TestTable2Shape:
    """Plan costs per heuristic on the three synthetic views."""

    @pytest.fixture(scope="class")
    def views(self):
        return {
            "star": star_view(n_tables=5, domain_size=10),
            "multistar": multistar_view(n_tables=5, domain_size=10),
            "linear": linear_view(n_tables=5, domain_size=10),
        }

    def test_degree_catastrophic_on_star_and_multistar(self, views):
        for kind in ("star", "multistar"):
            view = views[kind]
            spec = QuerySpec(
                tables=view.tables, query_vars=(view.chain_variables[0],)
            )
            degree = VariableElimination("degree").optimize(spec, view.catalog)
            width = VariableElimination("width").optimize(spec, view.catalog)
            assert degree.cost > 10 * width.cost, kind

    def test_all_extended_reach_optimum(self, views):
        """"for all schemas, the extended VE algorithm with any
        heuristic produces optimal plans"."""
        for kind, view in views.items():
            spec = QuerySpec(
                tables=view.tables, query_vars=(view.chain_variables[0],)
            )
            optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
            for heuristic in (
                "degree", "width", "elim_cost", "degree+width",
                "degree+elim_cost",
            ):
                ext = VariableElimination(heuristic, extended=True).optimize(
                    spec, view.catalog
                )
                assert ext.cost == pytest.approx(optimum, rel=1e-9), (
                    f"{kind}/{heuristic}"
                )

    def test_linear_view_mild(self, views):
        """On the linear view even plain heuristics stay within a small
        factor of the optimum (Table 2's right column)."""
        view = views["linear"]
        spec = QuerySpec(
            tables=view.tables, query_vars=(view.chain_variables[0],)
        )
        optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
        for heuristic in ("degree", "width", "elim_cost"):
            plain = VariableElimination(heuristic).optimize(spec, view.catalog)
            assert plain.cost <= 10 * optimum


class TestTable3Shape:
    """Random orderings: the extension helps a lot, but ordering still
    matters (the optimum stays outside the random CI)."""

    @pytest.fixture(scope="class")
    def star(self):
        return star_view(n_tables=5, domain_size=10)

    def _random_costs(self, view, extended, n_runs=10):
        spec = QuerySpec(
            tables=view.tables, query_vars=(view.chain_variables[0],)
        )
        return np.array(
            [
                VariableElimination("random", extended=extended, seed=s)
                .optimize(spec, view.catalog)
                .cost
                for s in range(n_runs)
            ]
        )

    def test_extension_improves_random_mean(self, star):
        plain = self._random_costs(star, extended=False)
        extended = self._random_costs(star, extended=True)
        assert extended.mean() < plain.mean()

    def test_ordering_still_matters_in_extended_space(self, star):
        """"the minimum cost is not within the confidence interval in
        either case"."""
        spec = QuerySpec(
            tables=star.tables, query_vars=(star.chain_variables[0],)
        )
        optimum = CSPlusNonlinear().optimize(spec, star.catalog).cost
        extended = self._random_costs(star, extended=True)
        mean = extended.mean()
        half_width = 1.96 * extended.std(ddof=1) / np.sqrt(len(extended))
        assert optimum < mean - half_width or np.allclose(
            extended, optimum
        ), "random-order VE+ should not already sit at the optimum"


class TestFigure10Tradeoff:
    """Plan-quality vs optimization-time: VE plans cost no more than a
    small multiple of CS+ while considering far fewer candidates."""

    def test_effort_quality_tradeoff(self):
        view = star_view(n_tables=7, domain_size=10)
        results = {}
        for name, opt in (
            ("cs", CSOptimizer()),
            ("cs+nl", CSPlusNonlinear()),
            ("ve_width", VariableElimination("width")),
            ("ve_width_ext", VariableElimination("width", extended=True)),
        ):
            costs, efforts = [], []
            for qv in view.chain_variables[:3]:
                spec = QuerySpec(tables=view.tables, query_vars=(qv,))
                r = opt.optimize(spec, view.catalog)
                costs.append(r.cost)
                efforts.append(r.plans_considered)
            results[name] = (np.mean(costs), np.mean(efforts))

        # CS is far worse in quality than everything else.
        assert results["cs"][0] > 10 * results["cs+nl"][0]
        # VE searches much less than nonlinear CS+.
        assert results["ve_width"][1] < results["cs+nl"][1] / 5
        # Extended VE lands close to CS+ quality at a fraction of the
        # search effort (exact equality held at the Table 2 queries;
        # averaging over three query variables leaves a small gap).
        assert results["ve_width_ext"][0] <= 1.25 * results["cs+nl"][0]


class TestExecutedPlansAgree:
    """Estimated-cost winners should also win on the simulated-IO
    clock, at least between the extremes (CS vs best)."""

    def test_execution_cost_ordering(self):
        sc = supply_chain(scale=0.01, seed=5)
        spec = QuerySpec(tables=sc.tables, query_vars=("cid",))
        cs_plan = CSOptimizer().optimize(spec, sc.catalog).plan
        best_plan = CSPlusNonlinear().optimize(spec, sc.catalog).plan
        _, cs_stats = execute(cs_plan, sc.catalog, SUM_PRODUCT)
        _, best_stats = execute(best_plan, sc.catalog, SUM_PRODUCT)
        assert best_stats.elapsed() < cs_stats.elapsed()
