"""The overload soak: the serving runtime's end-to-end contract.

A seeded 1000-query mix over three tenants — with injected worker
faults and two mid-soak snapshot-isolated reloads — must satisfy:

* every admitted-and-completed query returns results **byte-identical**
  to an unloaded serial execution against the same epoch's data;
* every shed request fails with a typed :class:`OverloadError` and
  nothing else;
* no query executes after its SLO is blown (deadline propagation);
* a second identical soak replays byte-identically (outcomes and the
  full metrics document).
"""

from __future__ import annotations

import json
from collections import defaultdict

import numpy as np
import pytest

from repro.cli import _build_database
from repro.datagen import supply_chain
from repro.errors import OverloadError
from repro.obs import SHED_REASONS, validate_trace_document
from repro.serve import (
    ServeRequest,
    ServeTracer,
    ServingRuntime,
    TenantSpec,
    VirtualClock,
)
from repro.storage.faults import WorkerFaultInjector

SCALE, SEED = 0.004, 7
N_QUERIES = 1000
ARRIVAL_GAP = 2e4          # mean inter-arrival; ~half a query's cost
RELOADS = (
    # (virtual time, table, datagen seed): two reloads mid-soak, one
    # of them on the partitioned table.
    (4e6, "location", 1043),
    (9e6, "ctdeals", 2043),
)
PARTITIONS = [("location", "wid", 4)]
GROUP_VARS = ("pid", "sid", "wid", "cid", "tid")


def tenant_mix():
    return [
        TenantSpec("gold", priority=2, queue_depth=16, slo=6e5),
        TenantSpec("silver", priority=1, rate=8e-6, burst=4.0,
                   queue_depth=8),
        TenantSpec("bulk", priority=0, queue_depth=4),
    ]


def build_workload(db):
    """Seeded (requests, sqls): tenants, shapes, and gaps from one rng."""
    rng = np.random.default_rng(99)
    names = ["gold", "silver", "bulk"]
    requests, sqls = [], []
    arrival = 0.0
    for _ in range(N_QUERIES):
        arrival += float(rng.exponential(ARRIVAL_GAP))
        var = GROUP_VARS[int(rng.integers(len(GROUP_VARS)))]
        sql = f"select {var}, sum(inv) from invest group by {var}"
        if rng.random() < 0.25:
            sql = (
                f"select {var}, sum(inv) from invest "
                f"where tid = 0 group by {var}"
            )
        tenant = names[int(rng.integers(len(names)))]
        requests.append(ServeRequest(
            tenant=tenant, query=db._select_query(sql), arrival=arrival,
        ))
        sqls.append(sql)
    return requests, sqls


def reload_relations():
    return [
        (at, supply_chain(scale=SCALE, seed=seed).catalog.relation(table),
         table)
        for at, table, seed in RELOADS
    ]


def run_soak():
    clock = VirtualClock()
    db = _build_database(
        SCALE, SEED, clock=clock, workers=2, partitions=PARTITIONS,
        worker_faults=WorkerFaultInjector(seed=11, rate=0.05),
    )
    tracer = ServeTracer()
    runtime = ServingRuntime(db, tenant_mix(), clock=clock, tracer=tracer)
    requests, sqls = build_workload(db)
    report = runtime.run_workload(requests, reload_relations())
    return db, report, sqls, tracer


def result_bytes(relation):
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


@pytest.fixture(scope="module")
def soak():
    return run_soak()


class TestOverloadSoak:
    def test_the_mix_actually_overloads(self, soak):
        _, report, _, _ = soak
        assert len(report.outcomes) == N_QUERIES
        # The soak must exercise both sides of admission: a healthy
        # completed population and a substantial shed population.
        assert len(report.completed) > 100
        assert len(report.shed) > 100

    def test_admitted_results_match_unloaded_serial_execution(self, soak):
        _, report, sqls, _ = soak
        wanted = defaultdict(set)
        for outcome, sql in zip(report.outcomes, sqls):
            if outcome.ok:
                wanted[outcome.epoch].add(sql)
        assert len(wanted) >= 2, "no queries completed after a reload"

        # Unloaded baseline: serial, no faults, no serving — the same
        # epochs reproduced by replaying the reloads in order.
        baseline_db = _build_database(SCALE, SEED, partitions=PARTITIONS)
        expected = {}

        def snapshot_epoch():
            epoch = baseline_db.catalog.stats_epoch
            for sql in wanted.get(epoch, ()):
                expected[(epoch, sql)] = result_bytes(
                    baseline_db.execute(sql).result
                )

        snapshot_epoch()
        for _, relation, table in reload_relations():
            baseline_db.reload_table(relation, table)
            snapshot_epoch()

        checked = 0
        for outcome, sql in zip(report.outcomes, sqls):
            if not outcome.ok:
                continue
            key = (outcome.epoch, sql)
            assert key in expected, f"epoch {outcome.epoch} never built"
            assert result_bytes(outcome.result) == expected[key]
            checked += 1
        assert checked == len(report.completed)

    def test_shed_requests_fail_only_with_overload_error(self, soak):
        _, report, _, _ = soak
        assert report.shed
        reasons = set()
        for outcome in report.shed:
            assert isinstance(outcome.error, OverloadError)
            assert outcome.result is None
            assert outcome.stats is None
            reasons.add(outcome.error.reason)
        assert reasons <= {
            "rate", "queue_full", "evicted", "deadline", "draining",
        }
        # The mix is rich enough to hit several shedding paths.
        assert {"rate", "queue_full"} <= reasons

    def test_no_query_executes_past_its_deadline(self, soak):
        db, report, _, tracer = soak
        slo = {spec.name: spec.slo for spec in tenant_mix()}
        for outcome in report.outcomes:
            bound = slo[outcome.request.tenant]
            if bound is None or outcome.shed:
                continue
            # Executed requests entered the engine with SLO to spare.
            assert outcome.queue_wait < bound
        misses = [
            o for o in report.shed if o.error.reason == "deadline"
        ]
        snap = db.metrics.snapshot().to_dict()
        recorded = sum(
            v["value"] for k, v in snap.items()
            if k.startswith("serve.deadline_misses")
        )
        assert recorded == len(misses)

    def test_worker_faults_were_injected_and_absorbed(self, soak):
        from repro.errors import ResourceError, WorkerError

        db, report, _, tracer = soak
        snap = db.metrics.snapshot().to_dict()
        injected = sum(
            v["value"] for k, v in snap.items()
            if k.startswith("faults.worker_injected")
        )
        assert injected > 0, "the soak never exercised worker faults"
        # Faults are retried/hedged/degraded inside execution and never
        # surface as failed requests.  The only legitimate execution
        # failure is a ResourceError: a request that started with SLO
        # to spare but blew its propagated deadline (cost budget)
        # mid-flight.
        for outcome in report.failed:
            assert isinstance(outcome.error, ResourceError)
            assert not isinstance(outcome.error, WorkerError)

    def test_reloads_were_snapshot_isolated(self, soak):
        db, report, _, tracer = soak
        epochs = sorted({o.epoch for o in report.outcomes if o.ok})
        assert len(epochs) == 3
        snap = db.metrics.snapshot().to_dict()
        assert snap["serve.reloads"]["value"] == len(RELOADS)
        # Every stale snapshot drained; only the current epoch's
        # (lazily materialized, refcount zero) entry may remain.
        assert snap["serve.snapshots_active"]["value"] <= 1
        assert snap["serve.snapshots_retired"]["value"] >= 2

    def test_double_run_is_byte_identical(self, soak):
        db, report, _, tracer = soak
        db2, report2, _, tracer2 = run_soak()
        first = [
            (o.status, getattr(o.error, "reason", None), o.epoch,
             result_bytes(o.result) if o.ok else None)
            for o in report.outcomes
        ]
        second = [
            (o.status, getattr(o.error, "reason", None), o.epoch,
             result_bytes(o.result) if o.ok else None)
            for o in report2.outcomes
        ]
        assert first == second
        assert report.duration == report2.duration
        assert (
            db.metrics.snapshot().to_json()
            == db2.metrics.snapshot().to_json()
        )
        # The virtual clock timestamps every span, so the full trace
        # document — and with it every quantile gauge derived from the
        # same run — replays byte-for-byte.
        doc = json.dumps(tracer.document(name="soak"), sort_keys=True)
        doc2 = json.dumps(tracer2.document(name="soak"), sort_keys=True)
        assert doc == doc2

    def test_trace_document_links_every_request(self, soak):
        db, report, _, tracer = soak
        doc = tracer.document(name="soak")
        validate_trace_document(doc)
        assert len(doc["requests"]) == N_QUERIES

        by_id = {e["request_id"]: e for e in doc["requests"]}
        assert len(by_id) == N_QUERIES
        for outcome, entry in zip(report.outcomes, doc["requests"]):
            assert entry["tenant"] == outcome.request.tenant
            root = entry["root"]
            assert root["kind"] == "request"
            assert root["attributes"]["request_id"] == entry["request_id"]
            if outcome.ok:
                # Admission -> queue wait -> dispatch -> operator spans,
                # all under one root with a consistent epoch.
                assert entry["status"] == "ok"
                assert entry["stats_epoch"] == outcome.epoch
                kinds = [c["kind"] for c in root["children"]]
                assert kinds[:2] == ["admission", "queue"]
                assert "dispatch" in kinds
                dispatch = root["children"][kinds.index("dispatch")]
                below, found = list(dispatch["children"]), False
                while below:
                    node = below.pop()
                    found = found or node["kind"] == "operator"
                    below.extend(node["children"])
                assert found, f"no operator spans in {entry['request_id']}"
                queue = root["children"][1]
                assert queue["attributes"]["queue_wait"] == (
                    outcome.queue_wait
                )
            elif outcome.shed:
                assert entry["status"] == "shed"
                assert entry["reason"] in SHED_REASONS
                assert entry["reason"] == outcome.error.reason

        # Reload/retire events from both mid-soak reloads are on the
        # shared event stream, stamped on the same virtual clock.
        names = [e["name"] for e in doc["events"]]
        assert names.count("reload") == len(RELOADS)
        assert "snapshot_retire" in names

    def test_trace_spans_nest_on_the_virtual_clock(self, soak):
        _, report, _, tracer = soak
        doc = tracer.document(name="soak")
        for entry in doc["requests"]:
            stack = [(entry["root"], None)]
            while stack:
                span, parent = stack.pop()
                assert span["end"] >= span["start"]
                if parent is not None:
                    assert span["start"] >= parent["start"]
                    assert span["end"] <= parent["end"]
                stack.extend((c, span) for c in span["children"])
