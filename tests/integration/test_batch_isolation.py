"""Property test: batch execution isolates faults per query.

Under a seeded random fault sweep, ``run_batch(stop_on_error=False)``
must behave as if each query ran alone: every query's result (or its
error class) is identical to a solo run against a fresh database with
the identically seeded injector.  Shared subplans, the shared buffer
pool, and partial-failure handling must never let one query's fault
change another query's answer.
"""

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.engine import Database
from repro.errors import MPFError
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage import BufferPool, FaultInjector

TRANSIENT_RATE = 0.05
PERMANENT_RATE = 0.03
SEEDS = range(8)


def _database(seed=None):
    injector = None
    if seed is not None:
        injector = FaultInjector(
            seed=seed,
            transient_rate=TRANSIENT_RATE,
            permanent_rate=PERMANENT_RATE,
        )
    rng = np.random.default_rng(99)
    a, b, c, d = var("a", 8), var("b", 6), var("c", 5), var("d", 4)
    db = Database(pool=BufferPool(injector=injector))
    db.register(complete_relation([a, b], rng=rng, name="p_ab"))
    db.register(complete_relation([b, c], rng=rng, name="p_bc"))
    db.register(complete_relation([c, d], rng=rng, name="p_cd"))
    db.create_view("w", ("p_ab", "p_bc", "p_cd"))
    return db


def _queries(db):
    view = MPFView("w", db._views["w"].view_tables, SUM_PRODUCT)
    return [
        MPFQuery(view, ("a",)),
        MPFQuery(view, ("b",)),
        MPFQuery(view, ("c",), selections={"d": 1}),
        MPFQuery(view, ("d",)),
        MPFQuery(view, ("a", "c")),
        MPFQuery(view, ("b",), selections={"a": 2}),
    ]


def _fingerprint(result, error):
    if error is not None:
        return ("error", type(error).__name__)
    keys, measure = result.sorted_snapshot()
    return ("ok", keys.tobytes() + measure.tobytes())


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_queries_match_solo_runs(seed):
    db = _database(seed=seed)
    batch = db.run_batch(_queries(db), stop_on_error=False)
    batch_prints = [
        _fingerprint(r.result, r.error) for r in batch.reports
    ]

    solo_prints = []
    for index in range(len(batch_prints)):
        solo_db = _database(seed=seed)
        query = _queries(solo_db)[index]
        try:
            report = solo_db.run_query(query)
            solo_prints.append(_fingerprint(report.result, report.error))
        except MPFError as exc:
            solo_prints.append(_fingerprint(None, exc))

    assert batch_prints == solo_prints


def test_fault_free_sweep_is_all_ok():
    db = _database()
    batch = db.run_batch(_queries(db), stop_on_error=False)
    assert all(r.ok for r in batch.reports)


def test_seeded_sweep_hits_at_least_one_fault():
    """The rates are high enough that the sweep exercises real faults
    somewhere — otherwise the property above is vacuous."""
    injected = 0
    for seed in SEEDS:
        db = _database(seed=seed)
        db.run_batch(_queries(db), stop_on_error=False)
        injector = db.pool.injector
        injected += injector.transient_injected + injector.permanent_injected
    assert injected > 0
