"""Differential acceptance for the kernel acceleration layer.

The contract: the group-index cache, the idempotent-semiring reduceat
fast paths, and Select→Scan fusion are **invisible in results** —
byte-identical outputs and identical structural counters across

* fused vs unfused lowering,
* workers 1, 2, and 4 (partitioned or not),
* every builtin semiring,

while the modeled clock gets cheaper (the fused plan skips the
selection's full pass; a cache-hit GroupBy is charged linear instead of
``n log n``) and the ``kernel.*`` counters record the cache traffic.
"""

import numpy as np
import pytest

from repro.algebra.groupindex import DEFAULT_GROUP_INDEX_CACHE
from repro.data import complete_relation, var
from repro.engine import Database
from repro.obs.metrics import MetricsRegistry
from repro.plans.runtime import ExecutionContext
from repro.query import MPFQuery, MPFView
from repro.semiring import ALL_SEMIRINGS, SUM_PRODUCT
from repro.workload.bp import belief_propagation

WORKER_SWEEP = (1, 2, 4)
TABLES = ("r_ab", "r_bc", "r_cd")


def _result_bytes(relation) -> bytes:
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


def _report_fingerprint(report):
    if report.error is not None:
        return ("error", type(report.error).__name__)
    return ("ok", _result_bytes(report.result))


def _counters(registry, exclude_prefixes=("scheduler.",)) -> dict:
    return {
        key: entry
        for key, entry in registry.snapshot().to_dict().items()
        if not key.startswith(exclude_prefixes)
    }


def _relations(semiring=SUM_PRODUCT):
    rng = np.random.default_rng(20260809)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    rels = [
        complete_relation([a, b], rng=rng, name="r_ab"),
        complete_relation([b, c], rng=rng, name="r_bc"),
        complete_relation([c, d], rng=rng, name="r_cd"),
    ]
    if semiring.dtype.kind == "b":
        rels = [r.with_measure(r.measure > 0.5) for r in rels]
    elif semiring.dtype.kind in "iu":
        rels = [
            r.with_measure((r.measure * 10).astype(semiring.dtype))
            for r in rels
        ]
    return rels


def _db(metrics=None, workers=1, partitioned=False, fuse=False,
        semiring=SUM_PRODUCT):
    db = Database(metrics=metrics, workers=workers, fuse_select_scan=fuse)
    for r in _relations(semiring):
        db.register(r)
    if partitioned:
        db.catalog.partition_table("r_ab", "b", 3)
        db.catalog.partition_table("r_bc", "b", 3)
        db.catalog.partition_table("r_cd", "c", 2)
    db.create_view("v", TABLES)
    return db


def _sixteen_queries(semiring=SUM_PRODUCT):
    view = MPFView("v", TABLES, semiring)
    queries = [MPFQuery(view, (g,)) for g in ("a", "b", "c", "d")]
    for g, sel in (("a", {"b": 1}), ("b", {"c": 0}), ("c", {"d": 2}),
                   ("d", {"a": 3})):
        queries.append(MPFQuery(view, (g,), selections=sel))
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")):
        queries.append(MPFQuery(view, pair))
    queries.append(MPFQuery(view, ("a",), selections={"a": 0}))
    queries.append(MPFQuery(view, ("b", "d")))
    queries.append(MPFQuery(view, ("a", "c"), selections={"b": 2}))
    queries.append(MPFQuery(view, ("d",), selections={"c": 1}))
    assert len(queries) == 16
    return queries


def _run(fuse, workers=1, partitioned=False, semiring=SUM_PRODUCT):
    DEFAULT_GROUP_INDEX_CACHE.clear()
    registry = MetricsRegistry()
    db = _db(metrics=registry, workers=workers, partitioned=partitioned,
             fuse=fuse, semiring=semiring)
    batch = db.run_batch(_sixteen_queries(semiring))
    prints = [_report_fingerprint(r) for r in batch.reports]
    return prints, _counters(registry), registry


class TestFusedVsUnfused:
    def test_batch_results_byte_identical(self):
        ref_prints, ref_counters, _ = _run(fuse=False)
        prints, counters, _ = _run(fuse=True)
        assert prints == ref_prints
        # Fusion replaces Scan+Select operator pairs with FilterScan,
        # so operator-shape counters legitimately differ; everything
        # measuring *results* must not.
        for key in ("query.tuples", "query.memo_hits", "queries.total"):
            matching = {
                k: v for k, v in ref_counters.items() if k.startswith(key)
            }
            assert matching == {
                k: v for k, v in counters.items() if k.startswith(key)
            }

    def test_fusion_reduces_modeled_cost(self):
        # Single-query execution: a batch's CSE shares every base scan
        # across queries, so no scan is exclusive to one Select and
        # fusion (correctly) stands down there.  A lone query with a
        # pushed-down selection is where the rewrite fires.
        query = _sixteen_queries()[4]  # group a, where b = 1
        elapsed = {}
        results = {}
        for fuse in (False, True):
            DEFAULT_GROUP_INDEX_CACHE.clear()
            db = _db(fuse=fuse)
            report = db.run_query(query)
            elapsed[fuse] = report.exec_stats.elapsed()
            results[fuse] = _result_bytes(report.result)
        assert results[True] == results[False]
        assert elapsed[True] < elapsed[False]

    def test_fused_operator_ran_and_shape_counters_account_for_it(self):
        DEFAULT_GROUP_INDEX_CACHE.clear()
        registry = MetricsRegistry()
        db = _db(metrics=registry, fuse=True)
        db.run_query(_sixteen_queries()[4])
        counters = _counters(registry)
        assert counters["query.operator_runs{operator=FilterScan}"][
            "value"
        ] >= 1

    @pytest.mark.parametrize("s", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_every_semiring_agrees(self, s):
        ref_prints, _, _ = _run(fuse=False, semiring=s)
        prints, _, _ = _run(fuse=True, semiring=s)
        assert prints == ref_prints


class TestKernelWorkerSweep:
    @pytest.mark.parametrize("fuse", (False, True), ids=("plain", "fused"))
    @pytest.mark.parametrize("partitioned", (False, True),
                             ids=("whole", "sharded"))
    def test_sweep_byte_identical_with_kernel_counters(
        self, fuse, partitioned
    ):
        runs = {
            workers: _run(fuse=fuse, workers=workers,
                          partitioned=partitioned)
            for workers in WORKER_SWEEP
        }
        ref_prints, ref_counters, _ = runs[1]
        # The kernel cache really fired, and its counters are pinned
        # structural counters: identical at every worker count.
        assert ref_counters.get(
            "kernel.groupindex_hits", {"value": 0}
        )["value"] > 0
        assert "kernel.groupindex_misses" in ref_counters
        for workers in WORKER_SWEEP[1:]:
            prints, counters, _ = runs[workers]
            assert prints == ref_prints
            assert counters == ref_counters


class TestBPKernelEquivalence:
    def _chain(self):
        rng = np.random.default_rng(13)
        a, b, c, d = var("a", 3), var("b", 3), var("c", 3), var("d", 3)
        return [
            complete_relation([a, b], rng=rng, name="t_ab"),
            complete_relation([b, c], rng=rng, name="t_bc"),
            complete_relation([c, d], rng=rng, name="t_cd"),
        ]

    def test_bp_messages_unchanged_by_fusion_and_workers(self):
        outputs = {}
        for fuse in (False, True):
            for workers in WORKER_SWEEP:
                DEFAULT_GROUP_INDEX_CACHE.clear()
                ctx = ExecutionContext(
                    {}, SUM_PRODUCT, workers=workers,
                    fuse_select_scan=fuse,
                )
                result = belief_propagation(
                    self._chain(), SUM_PRODUCT, context=ctx
                )
                outputs[(fuse, workers)] = {
                    name: _result_bytes(rel)
                    for name, rel in result.tables.items()
                }
        ref = outputs[(False, 1)]
        for key, got in outputs.items():
            assert got == ref, f"BP diverged at {key}"
