"""Differential recovery oracle (acceptance for the durability layer).

For every registered crash point: run the workload until the injected
crash, recover from the checkpoint directory, resume — and demand the
final results are **byte-identical** to an uninterrupted run and the
structural metrics counters (``queries.total``, ``vecache.steps``,
``bp.messages``, ``junction.cliques``) are identical too: every unit
of work is counted exactly once, live or via its recovered delta.

Bookkeeping counters (``wal.*``, ``checkpoint.*``, ``recovery.*``) and
cache-state-dependent counters (``bufferpool.*``, ``optimizer.*``,
``plan_cache.*``, ``batches.*``, ``query.*``) legitimately diverge —
a resumed process re-plans and starts with a different cache — and are
excluded from the identity check.
"""

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.data.relation import FunctionalRelation
from repro.engine import Database
from repro.errors import MPFError, RecoveryError, StorageError
from repro.obs.metrics import MetricsRegistry
from repro.plans.runtime import ExecutionContext
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage import (
    CRASH_POINTS,
    CheckpointManager,
    CrashInjector,
    InjectedCrash,
    RecoveryManager,
    StepJournal,
    WriteAheadLog,
    wal_path,
)
from repro.storage.wal import WAL_PAGE
from repro.workload.bp import belief_propagation
from repro.workload.junction import build_junction_tree
from repro.workload.vecache import build_ve_cache

STRUCTURAL = ("queries.total", "vecache.steps", "bp.messages",
              "junction.cliques")


def _structural(registry) -> dict:
    out = {}
    for key, entry in registry.snapshot().to_dict().items():
        base = key.split("{", 1)[0]
        if base in STRUCTURAL:
            out[key] = entry
    return out


def _result_bytes(relation) -> bytes:
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


# ----------------------------------------------------------------------
# 16-query batch
# ----------------------------------------------------------------------
def _batch_db(metrics=None):
    rng = np.random.default_rng(20260806)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    db = Database(metrics=metrics) if metrics is not None else Database()
    db.register(complete_relation([a, b], rng=rng, name="r_ab"))
    db.register(complete_relation([b, c], rng=rng, name="r_bc"))
    db.register(complete_relation([c, d], rng=rng, name="r_cd"))
    db.create_view("v", ("r_ab", "r_bc", "r_cd"))
    return db


def _sixteen_queries(db):
    view = MPFView("v", db._views["v"].view_tables, SUM_PRODUCT)
    queries = []
    for g in ("a", "b", "c", "d"):
        queries.append(MPFQuery(view, (g,)))
    for g, sel in (("a", {"b": 1}), ("b", {"c": 0}), ("c", {"d": 2}),
                   ("d", {"a": 3})):
        queries.append(MPFQuery(view, (g,), selections=sel))
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")):
        queries.append(MPFQuery(view, pair))
    queries.append(MPFQuery(view, ("a",), selections={"a": 0}))
    queries.append(MPFQuery(view, ("b", "d")))
    # Two deterministic failures: unknown group-by variables.  Their
    # error outcome must survive crash/recovery identically.
    queries.append(MPFQuery(view, ("nope",)))
    queries.append(MPFQuery(view, ("also_nope",)))
    assert len(queries) == 16
    return queries


def _report_fingerprint(report):
    if report.error is not None:
        return ("error", type(report.error).__name__)
    return ("ok", _result_bytes(report.result))


class TestBatchRecoveryOracle:
    @pytest.fixture(scope="class")
    def reference(self):
        db = _batch_db()
        batch = db.run_batch(_sixteen_queries(db))
        return (
            [_report_fingerprint(r) for r in batch.reports],
            _structural(db.metrics),
        )

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_recover_resume_is_identical(
        self, tmp_path, point, reference
    ):
        ref_prints, ref_counters = reference
        directory = str(tmp_path)
        crash = CrashInjector(point, after=2)
        registry = MetricsRegistry()
        db = _batch_db(metrics=registry)
        wal = WriteAheadLog(wal_path(directory), crash=crash,
                            metrics=registry)
        checkpointer = CheckpointManager(directory, wal=wal,
                                         metrics=registry)
        crashed = False
        try:
            batch = db.run_batch(
                _sixteen_queries(db), wal=wal,
                checkpointer=checkpointer, checkpoint_every=4,
            )
        except InjectedCrash:
            crashed = True
        finally:
            wal.close()

        if crashed:
            manager = RecoveryManager(directory)
            state = manager.recover()
            assert state.replayed_pages <= len(
                state.wal.of_kind(WAL_PAGE)
            )
            if state.has_checkpoint:
                db = manager.restore_database(state)
            else:
                db = _batch_db(metrics=state.registry)
            wal2 = WriteAheadLog(wal_path(directory),
                                 metrics=db.metrics)
            checkpointer2 = CheckpointManager(directory, wal=wal2,
                                              metrics=db.metrics)
            try:
                batch = db.run_batch(
                    _sixteen_queries(db), wal=wal2, resume_from=state,
                    checkpointer=checkpointer2, checkpoint_every=4,
                )
            finally:
                wal2.close()
            skipped = sum(1 for r in batch.reports if r.recovered)
            assert skipped == len(state.queries)

        prints = [_report_fingerprint(r) for r in batch.reports]
        assert prints == ref_prints
        assert _structural(db.metrics) == ref_counters


# ----------------------------------------------------------------------
# ≥100-step VE-cache workload
# ----------------------------------------------------------------------
def _chain_relations(n: int):
    rng = np.random.default_rng(7)
    vs = [var(f"x{i}", 2) for i in range(n + 1)]
    out = []
    for i in range(n):
        rows = [
            (p, q, float(rng.integers(1, 10)))
            for p in range(2)
            for q in range(2)
        ]
        out.append(
            FunctionalRelation.from_rows([vs[i], vs[i + 1]], rows,
                                         name=f"r{i}")
        )
    return out


class TestWorkloadRecoveryOracle:
    CHAIN = 101  # 102 elimination steps + 101 calibration messages

    @pytest.fixture(scope="class")
    def reference(self):
        registry = MetricsRegistry()
        ctx = ExecutionContext({}, SUM_PRODUCT, metrics=registry)
        cache = build_ve_cache(
            _chain_relations(self.CHAIN), SUM_PRODUCT, context=ctx
        )
        tables = {
            name: _result_bytes(rel) for name, rel in cache.tables.items()
        }
        return tables, _structural(registry)

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_vecache_workload_resumes_identically(
        self, tmp_path, point, reference
    ):
        ref_tables, ref_counters = reference
        directory = str(tmp_path)
        relations = _chain_relations(self.CHAIN)
        crash = CrashInjector(point, after=30)
        registry = MetricsRegistry()
        db = Database(metrics=registry)
        wal = WriteAheadLog(wal_path(directory), crash=crash,
                            metrics=registry)
        checkpointer = CheckpointManager(directory, wal=wal,
                                         metrics=registry)
        ctx = ExecutionContext({}, SUM_PRODUCT, metrics=registry)
        journal = StepJournal(
            wal=wal, checkpointer=checkpointer, checkpoint_db=db,
            checkpoint_every=25,
        )
        crashed = False
        cache = None
        try:
            cache = build_ve_cache(
                relations, SUM_PRODUCT, context=ctx, journal=journal
            )
        except InjectedCrash:
            crashed = True
        finally:
            wal.close()

        if crashed:
            manager = RecoveryManager(directory)
            state = manager.recover()
            # Never replays more work than the WAL records.
            assert state.replayed_records <= len(state.wal.records)
            registry2 = state.registry
            wal2 = WriteAheadLog(wal_path(directory), metrics=registry2)
            ctx2 = ExecutionContext({}, SUM_PRODUCT, metrics=registry2)
            journal2 = StepJournal(wal=wal2, recovered=state.steps)
            try:
                cache = build_ve_cache(
                    relations, SUM_PRODUCT, context=ctx2,
                    journal=journal2,
                )
            finally:
                wal2.close()
            assert journal2.skipped == len(state.steps)
            snap = registry2.snapshot().to_dict()
            skipped_entry = snap.get(
                "checkpoint.steps_skipped{unit=step}", {"value": 0}
            )
            assert skipped_entry["value"] == journal2.skipped
            final_registry = registry2
        else:
            final_registry = registry

        got = {
            name: _result_bytes(rel) for name, rel in cache.tables.items()
        }
        assert got == ref_tables
        assert _structural(final_registry) == ref_counters


# ----------------------------------------------------------------------
# BP and junction-tree journal hooks
# ----------------------------------------------------------------------
def _bp_relations():
    rng = np.random.default_rng(13)
    a, b, c, d = var("a", 3), var("b", 3), var("c", 3), var("d", 3)
    return [
        complete_relation([a, b], rng=rng, name="t_ab"),
        complete_relation([b, c], rng=rng, name="t_bc"),
        complete_relation([c, d], rng=rng, name="t_cd"),
    ]


class TestBPJournal:
    def test_bp_resumes_with_identical_messages(self, tmp_path):
        ref_registry = MetricsRegistry()
        ref = belief_propagation(
            _bp_relations(), SUM_PRODUCT,
            context=ExecutionContext({}, SUM_PRODUCT,
                                     metrics=ref_registry),
        )
        ref_bytes = {n: _result_bytes(r) for n, r in ref.tables.items()}

        directory = str(tmp_path)
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            wal_path(directory),
            crash=CrashInjector("workload.step", after=2),
            metrics=registry,
        )
        journal = StepJournal(wal=wal)
        with pytest.raises(InjectedCrash):
            belief_propagation(
                _bp_relations(), SUM_PRODUCT,
                context=ExecutionContext({}, SUM_PRODUCT,
                                         metrics=registry),
                journal=journal,
            )
        wal.close()

        state = RecoveryManager(directory).recover()
        assert len(state.steps) == 2
        wal2 = WriteAheadLog(wal_path(directory), metrics=state.registry)
        result = belief_propagation(
            _bp_relations(), SUM_PRODUCT,
            context=ExecutionContext({}, SUM_PRODUCT,
                                     metrics=state.registry),
            journal=StepJournal(wal=wal2, recovered=state.steps),
        )
        wal2.close()
        got = {n: _result_bytes(r) for n, r in result.tables.items()}
        assert got == ref_bytes
        assert _structural(state.registry) == _structural(ref_registry)

    def test_junction_tree_resumes_identically(self, tmp_path):
        rng = np.random.default_rng(17)
        a, b, c, d = var("a", 3), var("b", 3), var("c", 3), var("d", 3)
        # A 4-cycle: triangulation yields two maximal cliques, so the
        # crash fires between the two clique materializations.
        relations = [
            complete_relation([a, b], rng=rng, name="u_ab"),
            complete_relation([b, c], rng=rng, name="u_bc"),
            complete_relation([c, d], rng=rng, name="u_cd"),
            complete_relation([a, d], rng=rng, name="u_ad"),
        ]
        ref_registry = MetricsRegistry()
        ref = build_junction_tree(
            relations, SUM_PRODUCT,
            context=ExecutionContext({}, SUM_PRODUCT,
                                     metrics=ref_registry),
        )
        ref_bytes = {n: _result_bytes(r) for n, r in ref.cliques.items()}

        directory = str(tmp_path)
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            wal_path(directory),
            crash=CrashInjector("workload.step", after=1),
            metrics=registry,
        )
        with pytest.raises(InjectedCrash):
            build_junction_tree(
                relations, SUM_PRODUCT,
                context=ExecutionContext({}, SUM_PRODUCT,
                                         metrics=registry),
                journal=StepJournal(wal=wal),
            )
        wal.close()

        state = RecoveryManager(directory).recover()
        wal2 = WriteAheadLog(wal_path(directory), metrics=state.registry)
        rebuilt = build_junction_tree(
            relations, SUM_PRODUCT,
            context=ExecutionContext({}, SUM_PRODUCT,
                                     metrics=state.registry),
            journal=StepJournal(wal=wal2, recovered=state.steps),
        )
        wal2.close()
        got = {n: _result_bytes(r) for n, r in rebuilt.cliques.items()}
        assert got == ref_bytes
        assert _structural(state.registry) == _structural(ref_registry)


class TestRecoveryErrorFamily:
    def test_recovery_error_is_storage_and_mpf(self):
        exc = RecoveryError("torn")
        assert isinstance(exc, StorageError)
        assert isinstance(exc, MPFError)

    def test_cli_exit_code_family(self):
        from repro.cli import EXIT_CRASH, EXIT_STORAGE, exit_code_for

        assert exit_code_for(RecoveryError("x")) == EXIT_STORAGE
        assert EXIT_CRASH == 8

    def test_injected_crash_is_not_an_mpf_error(self):
        # InjectedCrash derives from BaseException so `except MPFError`
        # / `except Exception` batch isolation can never swallow it.
        assert not issubclass(InjectedCrash, Exception)
