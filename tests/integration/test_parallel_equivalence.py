"""Differential worker-sweep oracle (acceptance for partition-parallel
execution).

The determinism contract of ``docs/parallelism.md``: for a fixed
database state (partitioned or not), running at ``workers ∈ {1, 2, 4}``
produces **byte-identical results** and **identical structural
counters** — including the per-shard ``shard.*`` counters, whose values
depend only on the catalog's partition specs, never on the worker
count.  Only the modeled ``scheduler.*`` gauges may differ (the
makespan is worker-dependent by design).

The crash half: at every registered crash point, a partitioned batch
crashed and resumed at each worker count yields byte-identical
results *across worker counts*, and tolerance-equal results against
an uninterrupted reference (a memo-seeded resume recomputes a
downstream aggregate from the merged checkpointed child, while the
uninterrupted run combined per-shard partials — float addition is
not associative, so byte equality is deliberately not promised
there).
"""

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.engine import Database
from repro.obs.metrics import MetricsRegistry
from repro.plans.runtime import ExecutionContext
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage import (
    CRASH_POINTS,
    CheckpointManager,
    CrashInjector,
    InjectedCrash,
    RecoveryManager,
    WriteAheadLog,
    wal_path,
)
from repro.workload.bp import belief_propagation

WORKER_SWEEP = (1, 2, 4)


def _result_bytes(relation) -> bytes:
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


def _report_fingerprint(report):
    if report.error is not None:
        return ("error", type(report.error).__name__)
    return ("ok", _result_bytes(report.result))


def _counters(registry, exclude_prefixes=("scheduler.",)) -> dict:
    return {
        key: entry
        for key, entry in registry.snapshot().to_dict().items()
        if not key.startswith(exclude_prefixes)
    }


def _batch_db(metrics=None, workers=1, partitioned=False):
    rng = np.random.default_rng(20260806)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    db = Database(metrics=metrics, workers=workers)
    db.register(complete_relation([a, b], rng=rng, name="r_ab"))
    db.register(complete_relation([b, c], rng=rng, name="r_bc"))
    db.register(complete_relation([c, d], rng=rng, name="r_cd"))
    if partitioned:
        # Mixed alignment on purpose: r_ab ⋈ r_bc is co-partitioned on
        # b; anything joining r_cd on c repartitions explicitly.
        db.catalog.partition_table("r_ab", "b", 3)
        db.catalog.partition_table("r_bc", "b", 3)
        db.catalog.partition_table("r_cd", "c", 2)
    db.create_view("v", ("r_ab", "r_bc", "r_cd"))
    return db


def _sixteen_queries(db):
    view = MPFView("v", db._views["v"].view_tables, SUM_PRODUCT)
    queries = [MPFQuery(view, (g,)) for g in ("a", "b", "c", "d")]
    for g, sel in (("a", {"b": 1}), ("b", {"c": 0}), ("c", {"d": 2}),
                   ("d", {"a": 3})):
        queries.append(MPFQuery(view, (g,), selections=sel))
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")):
        queries.append(MPFQuery(view, pair))
    queries.append(MPFQuery(view, ("a",), selections={"a": 0}))
    queries.append(MPFQuery(view, ("b", "d")))
    # Two deterministic failures; their outcome must be identical at
    # every worker count too.
    queries.append(MPFQuery(view, ("nope",)))
    queries.append(MPFQuery(view, ("also_nope",)))
    assert len(queries) == 16
    return queries


def _run_sweep(partitioned):
    runs = {}
    for workers in WORKER_SWEEP:
        registry = MetricsRegistry()
        db = _batch_db(
            metrics=registry, workers=workers, partitioned=partitioned
        )
        batch = db.run_batch(_sixteen_queries(db))
        runs[workers] = (
            [_report_fingerprint(r) for r in batch.reports],
            _counters(registry),
            batch.schedule,
        )
    return runs


class TestWorkerSweepEquivalence:
    def test_unpartitioned_sweep_is_byte_identical(self):
        runs = _run_sweep(partitioned=False)
        ref_prints, ref_counters, _ = runs[1]
        for workers in WORKER_SWEEP[1:]:
            prints, counters, _ = runs[workers]
            assert prints == ref_prints
            assert counters == ref_counters

    def test_partitioned_sweep_is_byte_identical(self):
        runs = _run_sweep(partitioned=True)
        ref_prints, ref_counters, _ = runs[1]
        # Sharded execution really happened: the structural shard
        # counters are present and identical at every worker count.
        assert any(k.startswith("shard.") for k in ref_counters)
        for workers in WORKER_SWEEP[1:]:
            prints, counters, _ = runs[workers]
            assert prints == ref_prints
            assert counters == ref_counters

    def test_partitioned_makespan_shrinks_with_workers(self):
        runs = _run_sweep(partitioned=True)
        serial = runs[1][2]
        assert serial.makespan == pytest.approx(serial.serial_elapsed)
        for workers in WORKER_SWEEP[1:]:
            schedule = runs[workers][2]
            # Same task set, same total work; only the packing changes.
            assert schedule.tasks == serial.tasks
            assert schedule.serial_elapsed == pytest.approx(
                serial.serial_elapsed
            )
            assert schedule.makespan < serial.makespan
        assert runs[4][2].speedup >= 2.0

    def test_partitioned_agrees_with_serial_reference(self):
        # Across the partitioned/unpartitioned boundary only
        # function-level equality holds (per-shard float summation
        # order differs); keys must match exactly.
        db0 = _batch_db()
        ref = db0.run_batch(_sixteen_queries(db0))
        db1 = _batch_db(partitioned=True, workers=4)
        got = db1.run_batch(_sixteen_queries(db1))
        for r0, r1 in zip(ref.reports, got.reports):
            if r0.error is not None:
                assert type(r1.error) is type(r0.error)
                continue
            assert r1.result.equals(r0.result, SUM_PRODUCT)


class TestBPWorkerSweep:
    def _relations(self):
        rng = np.random.default_rng(13)
        a, b, c, d = var("a", 3), var("b", 3), var("c", 3), var("d", 3)
        return [
            complete_relation([a, b], rng=rng, name="t_ab"),
            complete_relation([b, c], rng=rng, name="t_bc"),
            complete_relation([c, d], rng=rng, name="t_cd"),
        ]

    def test_bp_messages_identical_across_workers(self):
        outputs = {}
        counters = {}
        for workers in WORKER_SWEEP:
            registry = MetricsRegistry()
            ctx = ExecutionContext(
                {}, SUM_PRODUCT, metrics=registry, workers=workers
            )
            result = belief_propagation(
                self._relations(), SUM_PRODUCT, context=ctx
            )
            outputs[workers] = {
                name: _result_bytes(rel)
                for name, rel in result.tables.items()
            }
            counters[workers] = _counters(registry)
            ctx.publish_schedule()
        assert outputs[2] == outputs[1]
        assert outputs[4] == outputs[1]
        assert counters[2] == counters[1]
        assert counters[4] == counters[1]

    def test_bp_workers_kwarg_builds_scheduled_context(self):
        ref = belief_propagation(self._relations(), SUM_PRODUCT)
        got = belief_propagation(
            self._relations(), SUM_PRODUCT, workers=4
        )
        assert {
            n: _result_bytes(r) for n, r in got.tables.items()
        } == {
            n: _result_bytes(r) for n, r in ref.tables.items()
        }


class TestCrashDifferential:
    """Crash → recover → resume at every worker count.

    Byte-identical across worker counts (same crash point, same
    resume); tolerance-equal against the uninterrupted reference.
    """

    @pytest.fixture(scope="class")
    def uninterrupted(self):
        db = _batch_db(partitioned=True)
        return db.run_batch(_sixteen_queries(db)).reports

    def _crash_and_resume(self, directory, point, workers):
        crash = CrashInjector(point, after=2)
        registry = MetricsRegistry()
        db = _batch_db(
            metrics=registry, workers=workers, partitioned=True
        )
        wal = WriteAheadLog(
            wal_path(directory), crash=crash, metrics=registry
        )
        checkpointer = CheckpointManager(directory, wal=wal,
                                         metrics=registry)
        crashed = False
        try:
            batch = db.run_batch(
                _sixteen_queries(db), wal=wal,
                checkpointer=checkpointer, checkpoint_every=4,
            )
        except InjectedCrash:
            crashed = True
        finally:
            wal.close()

        if crashed:
            manager = RecoveryManager(directory)
            state = manager.recover()
            if state.has_checkpoint:
                db = manager.restore_database(state)
                # The checkpoint manifest re-declared the partition
                # specs: the restored catalog is sharded again.
                assert db.catalog.has_partitions
            else:
                db = _batch_db(metrics=state.registry, partitioned=True)
            wal2 = WriteAheadLog(wal_path(directory), metrics=db.metrics)
            checkpointer2 = CheckpointManager(directory, wal=wal2,
                                              metrics=db.metrics)
            try:
                batch = db.run_batch(
                    _sixteen_queries(db), wal=wal2, resume_from=state,
                    checkpointer=checkpointer2, checkpoint_every=4,
                    workers=workers,
                )
            finally:
                wal2.close()
        return crashed, batch, db.metrics

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_resume_identical_across_workers(
        self, tmp_path, point, uninterrupted
    ):
        outcomes = {}
        for workers in WORKER_SWEEP:
            directory = str(tmp_path / f"w{workers}")
            crashed, batch, registry = self._crash_and_resume(
                directory, point, workers
            )
            outcomes[workers] = (
                crashed,
                [_report_fingerprint(r) for r in batch.reports],
                _counters(registry),
                batch.reports,
            )

        ref_crashed, ref_prints, ref_counters, _ = outcomes[1]
        for workers in WORKER_SWEEP[1:]:
            crashed, prints, counters, _ = outcomes[workers]
            # Ordered dispatch: the crash fires at the same place at
            # every worker count, and the resumed run is byte-for-byte
            # the same.
            assert crashed == ref_crashed
            assert prints == ref_prints
            assert counters == ref_counters

        # Tolerant equality against the uninterrupted reference: a
        # memo-seeded resume may combine floats in a different order.
        for ref_report, report in zip(uninterrupted, outcomes[1][3]):
            if ref_report.error is not None:
                assert _report_fingerprint(report) == _report_fingerprint(
                    ref_report
                )
                continue
            assert report.error is None
            assert report.result.equals(ref_report.result, SUM_PRODUCT)
