"""Differential worker-fault oracle (acceptance for fault-tolerant
task execution).

The contract of ``docs/robustness.md`` ("Worker fault tolerance"):
for every registered fault kind and every injection site, a
partitioned 16-query batch — and a BP workload — run under injected
worker faults produces **byte-identical results and structural
counters** (the cost clock, ``shard.*``, ``query.*``, ``bufferpool.*``
families) to the fault-free serial run, at workers 1, 2, and 4.  The
injected faults are visible only in the modeled schedule and the new
``scheduler.task_retries`` / ``scheduler.task_timeouts`` /
``scheduler.hedges`` / ``faults.worker_injected`` metrics.

The degradation half: an exhausted retry budget (or a tripped
failure-rate breaker) degrades the pool to serial re-execution — the
batch still succeeds, byte-identically, recorded as
``scheduler.degraded`` — while ``allow_degrade=False`` surfaces the
fault as ``WorkerError`` instead.
"""

import math

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.engine import Database
from repro.errors import WorkerError
from repro.obs.metrics import MetricsRegistry
from repro.plans.runtime import ExecutionContext
from repro.plans.scheduler import TaskPolicy
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage.faults import WORKER_FAULT_KINDS, WorkerFaultInjector
from repro.workload.bp import belief_propagation

WORKER_SWEEP = (1, 2, 4)

# Structural-counter identity excludes the modeled schedule and the
# fault-visibility metrics — exactly the families the docs carve out.
NON_STRUCTURAL = ("scheduler.", "faults.")

# Injection sites, by task-label substring: the shard scans, the
# repartition shuffles, the partial-aggregate combine barrier, and the
# sharded join tasks.  Each site must actually fire (asserted via
# ``injector.counts``), so a renamed label breaks the oracle loudly.
LABEL_SITES = ("Scan(", "shuffle[", "+combine", "ProductJoin")

# A policy under which every fault kind is recoverable without
# degradation: hangs are hedged, stragglers capped, crashes retried.
RECOVERING_POLICY = TaskPolicy(timeout=50_000.0, hedge_after=1_000.0)


def _result_bytes(relation) -> bytes:
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


def _report_fingerprint(report):
    if report.error is not None:
        return ("error", type(report.error).__name__)
    return ("ok", _result_bytes(report.result))


def _counters(registry, exclude_prefixes=NON_STRUCTURAL) -> dict:
    return {
        key: entry
        for key, entry in registry.snapshot().to_dict().items()
        if not key.startswith(exclude_prefixes)
    }


def _batch_db(metrics=None, workers=1, task_policy=None, worker_faults=None):
    rng = np.random.default_rng(20260806)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    db = Database(
        metrics=metrics, workers=workers, task_policy=task_policy,
        worker_faults=worker_faults,
    )
    db.register(complete_relation([a, b], rng=rng, name="r_ab"))
    db.register(complete_relation([b, c], rng=rng, name="r_bc"))
    db.register(complete_relation([c, d], rng=rng, name="r_cd"))
    db.catalog.partition_table("r_ab", "b", 3)
    db.catalog.partition_table("r_bc", "b", 3)
    db.catalog.partition_table("r_cd", "c", 2)
    db.create_view("v", ("r_ab", "r_bc", "r_cd"))
    return db


def _sixteen_queries(db):
    view = MPFView("v", db._views["v"].view_tables, SUM_PRODUCT)
    queries = [MPFQuery(view, (g,)) for g in ("a", "b", "c", "d")]
    for g, sel in (("a", {"b": 1}), ("b", {"c": 0}), ("c", {"d": 2}),
                   ("d", {"a": 3})):
        queries.append(MPFQuery(view, (g,), selections=sel))
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")):
        queries.append(MPFQuery(view, pair))
    queries.append(MPFQuery(view, ("a",), selections={"a": 0}))
    queries.append(MPFQuery(view, ("b", "d")))
    queries.append(MPFQuery(view, ("nope",)))
    queries.append(MPFQuery(view, ("also_nope",)))
    assert len(queries) == 16
    return queries


def _run_batch(workers=1, task_policy=None, worker_faults=None):
    registry = MetricsRegistry()
    db = _batch_db(
        metrics=registry, workers=workers, task_policy=task_policy,
        worker_faults=worker_faults,
    )
    batch = db.run_batch(_sixteen_queries(db))
    prints = [_report_fingerprint(r) for r in batch.reports]
    return prints, registry, batch


@pytest.fixture(scope="module")
def reference():
    """Fault-free serial run: the identity every faulted run must hit."""
    prints, registry, _ = _run_batch(workers=1)
    return prints, _counters(registry)


class TestFaultDifferentialOracle:
    @pytest.mark.parametrize("kind", WORKER_FAULT_KINDS)
    @pytest.mark.parametrize("site", LABEL_SITES)
    @pytest.mark.parametrize("workers", WORKER_SWEEP)
    def test_kind_by_site_sweep(self, reference, kind, site, workers):
        ref_prints, ref_counters = reference
        injector = WorkerFaultInjector(seed=11)
        injector.fail_label(site, kind)
        prints, registry, _ = _run_batch(
            workers=workers, task_policy=RECOVERING_POLICY,
            worker_faults=injector,
        )
        # The site fired (a label that never matches is a test bug)...
        assert injector.counts.get(kind, 0) >= 1, (kind, site)
        # ...and left results and structural counters byte-identical.
        assert prints == ref_prints
        assert _counters(registry) == ref_counters
        # Fault handling is visible in the fault metrics alone.
        snap = registry.snapshot().to_dict()
        assert any(
            key.startswith("faults.worker_injected") for key in snap
        )

    def test_seeded_rate_sweep(self, reference):
        ref_prints, ref_counters = reference
        for workers in WORKER_SWEEP:
            injector = WorkerFaultInjector(seed=5, rate=0.25)
            prints, registry, _ = _run_batch(
                workers=workers, task_policy=RECOVERING_POLICY,
                worker_faults=injector,
            )
            assert injector.counts, "seeded faults never fired"
            assert prints == ref_prints
            assert _counters(registry) == ref_counters

    def test_retries_surface_in_scheduler_metrics(self, reference):
        injector = WorkerFaultInjector(seed=11)
        injector.fail_task(3, "crash")
        _, registry, _ = _run_batch(
            workers=2, task_policy=RECOVERING_POLICY,
            worker_faults=injector,
        )
        snap = registry.snapshot().to_dict()
        assert snap["scheduler.task_retries"]["value"] >= 1

    def test_faults_inflate_the_modeled_makespan(self):
        _, _, clean = _run_batch(workers=2)
        injector = WorkerFaultInjector(seed=11)
        injector.fail_label("Scan(", "slow")
        _, _, faulted = _run_batch(
            workers=2, task_policy=TaskPolicy(timeout=50_000.0),
            worker_faults=injector,
        )
        # Same task set, same structural work; the straggler shows up
        # only on the modeled clock.
        assert faulted.schedule.tasks == clean.schedule.tasks
        assert faulted.schedule.makespan > clean.schedule.makespan


class TestGracefulDegradation:
    def test_exhausted_budget_degrades_and_batch_succeeds(self, reference):
        ref_prints, ref_counters = reference
        injector = WorkerFaultInjector(seed=11)
        injector.fail_task(1, "crash", attempts=math.inf)
        prints, registry, _ = _run_batch(workers=2, worker_faults=injector)
        assert prints == ref_prints
        assert _counters(registry) == ref_counters
        snap = registry.snapshot().to_dict()
        assert snap["scheduler.degraded{reason=retry_budget}"]["value"] == 1

    def test_breaker_trips_wholesale(self, reference):
        ref_prints, ref_counters = reference
        injector = WorkerFaultInjector(seed=11, rate=1.0, kinds=("crash",))
        policy = TaskPolicy(breaker_min_tasks=4, breaker_threshold=0.5)
        prints, registry, _ = _run_batch(
            workers=2, task_policy=policy, worker_faults=injector,
        )
        assert prints == ref_prints
        assert _counters(registry) == ref_counters
        snap = registry.snapshot().to_dict()
        assert snap["scheduler.degraded{reason=breaker}"]["value"] == 1

    def test_unrecoverable_fault_raises_worker_error(self):
        injector = WorkerFaultInjector(seed=11)
        injector.fail_task(1, "crash", attempts=math.inf)
        policy = TaskPolicy(allow_degrade=False)
        prints, _, batch = _run_batch(
            workers=2, task_policy=policy, worker_faults=injector,
        )
        # run_batch's partial-failure contract holds: the poisoned
        # query fails with WorkerError, later queries still run.
        errors = [
            r.error for r in batch.reports if r.error is not None
        ]
        assert any(isinstance(e, WorkerError) for e in errors)

    def test_worker_error_is_fail_fast_with_stop_on_error(self):
        injector = WorkerFaultInjector(seed=11)
        injector.fail_task(1, "crash", attempts=math.inf)
        db = _batch_db(
            workers=2, task_policy=TaskPolicy(allow_degrade=False),
            worker_faults=injector,
        )
        # Well-formed queries only: the two deliberately-malformed ones
        # would fail fast at planning time, before any task runs.
        with pytest.raises(WorkerError):
            db.run_batch(_sixteen_queries(db)[:14], stop_on_error=True)


class TestBPUnderWorkerFaults:
    def _relations(self):
        rng = np.random.default_rng(13)
        a, b, c, d = var("a", 3), var("b", 3), var("c", 3), var("d", 3)
        return [
            complete_relation([a, b], rng=rng, name="t_ab"),
            complete_relation([b, c], rng=rng, name="t_bc"),
            complete_relation([c, d], rng=rng, name="t_cd"),
        ]

    def _run(self, workers=1, task_policy=None, worker_faults=None):
        registry = MetricsRegistry()
        ctx = ExecutionContext(
            {}, SUM_PRODUCT, metrics=registry, workers=workers,
            task_policy=task_policy, worker_faults=worker_faults,
        )
        result = belief_propagation(
            self._relations(), SUM_PRODUCT, context=ctx
        )
        tables = {
            name: _result_bytes(rel) for name, rel in result.tables.items()
        }
        return tables, _counters(registry)

    @pytest.mark.parametrize("kind", WORKER_FAULT_KINDS)
    def test_bp_messages_identical_under_faults(self, kind):
        ref_tables, ref_counters = self._run()
        # Pure-serial (workers=1, unpartitioned) has no scheduled
        # tasks to fault — the injector only sees scheduled dispatch.
        for workers in WORKER_SWEEP[1:]:
            injector = WorkerFaultInjector(seed=3)
            injector.fail_task(2, kind)
            tables, counters = self._run(
                workers=workers, task_policy=RECOVERING_POLICY,
                worker_faults=injector,
            )
            assert injector.counts.get(kind, 0) >= 1
            assert tables == ref_tables
            assert counters == ref_counters
