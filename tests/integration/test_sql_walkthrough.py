"""End-to-end SQL walkthrough: every Section 3.1 example as SQL.

The paper's decision-support narrative, replayed statement by
statement against the engine, with oracle verification for each.
"""

from functools import reduce

import pytest

from repro import Database
from repro.algebra import marginalize, product_join, restrict, restrict_range
from repro.cost import IOCostModel
from repro.semiring import MIN_PRODUCT, SUM_PRODUCT

CREATE_INVEST = """
create mpfview invest as
  (select pid, sid, wid, cid, tid,
          measure = (* contracts.price, warehouses.w_factor,
                       transporters.t_overhead, location.quantity,
                       ctdeals.ct_discount)
   from contracts, warehouses, transporters, location, ctdeals
   where contracts.pid = location.pid and
         location.wid = warehouses.wid and
         warehouses.cid = ctdeals.cid and
         ctdeals.tid = transporters.tid)
"""


@pytest.fixture
def setting(tiny_supply_chain):
    db = Database()
    for t in tiny_supply_chain.tables:
        db.register(tiny_supply_chain.catalog.relation(t))
    db.execute(CREATE_INVEST)

    def joint(semiring):
        return reduce(
            lambda a, b: product_join(a, b, semiring),
            [
                tiny_supply_chain.catalog.relation(t)
                for t in tiny_supply_chain.tables
            ],
        )

    return db, joint


class TestSection31Queries:
    def test_minimum_investment_per_part(self, setting):
        """'What is the minimum investment on each part?'"""
        db, joint = setting
        got = db.execute(
            "select pid, min(inv) from invest group by pid"
        ).result
        expected = marginalize(joint(MIN_PRODUCT), ["pid"], MIN_PRODUCT)
        assert got.equals(expected, MIN_PRODUCT)

    def test_warehouse_offline_cost(self, setting):
        """'How much would it cost for warehouse w1 to go off-line?'"""
        db, joint = setting
        got = db.execute(
            "select wid, sum(inv) from invest where wid = 1 group by wid"
        ).result
        expected = restrict(
            marginalize(joint(SUM_PRODUCT), ["wid"], SUM_PRODUCT),
            {"wid": 1},
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_contractor_loss_if_transporter_offline(self, setting):
        """'How much money would each contractor lose if transporter t1
        went off-line?'"""
        db, joint = setting
        got = db.execute(
            "select cid, sum(inv) from invest where tid = 1 group by cid"
        ).result
        expected = marginalize(
            restrict(joint(SUM_PRODUCT), {"tid": 1}), ["cid"], SUM_PRODUCT
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_constrained_range(self, setting):
        db, joint = setting
        base = marginalize(joint(SUM_PRODUCT), ["wid"], SUM_PRODUCT)
        # Pick a threshold strictly between two result values so that
        # last-ulp summation-order differences between plans cannot
        # flip a borderline row's membership.
        ordered = sorted(base.measure)
        mid = base.ntuples // 2
        threshold = 0.5 * (float(ordered[mid - 1]) + float(ordered[mid]))
        got = db.execute(
            "select wid, sum(inv) from invest group by wid "
            f"having f >= {threshold:.10f}"
        ).result
        expected = restrict_range(base, ">=", threshold)
        assert got.equals(expected, SUM_PRODUCT)


class TestIndexedEvidencePath:
    def test_index_accelerates_constrained_domain(self, setting):
        """Under the IO cost model, indexing ctdeals(tid) turns the
        evidence selection into an index probe — same answer."""
        db, joint = setting
        reference = db.execute(
            "select cid, sum(inv) from invest where tid = 1 group by cid"
        ).result

        io_db = Database(cost_model=IOCostModel())
        for t in ("contracts", "warehouses", "transporters", "location",
                  "ctdeals"):
            io_db.register(db.catalog.relation(t))
        io_db.execute(CREATE_INVEST)
        io_db.execute("create index on ctdeals(tid)")
        io_db.execute("create index on transporters(tid)")
        report = io_db.execute(
            "select cid, sum(inv) from invest where tid = 1 group by cid",
            strategy="cs+nonlinear",
        )
        assert report.result.equals(
            reference, SUM_PRODUCT, ignore_zero_rows=True
        )
        assert "IndexScan" in report.plan_text


class TestWorkloadRoundTrip:
    def test_cache_then_hypothetical(self, setting, tiny_supply_chain):
        """Build a cache via SQL-registered tables, pose the Section 6
        evidence query and a Section 3.1 hypothetical, checking both."""
        from repro.algebra import alter_measure

        db, joint = setting
        db.build_cache("invest")
        cached = db.query_cached("invest", "wid", evidence={"tid": 1})
        direct = db.execute(
            "select wid, sum(inv) from invest where tid = 1 group by wid"
        ).result
        assert cached.equals(direct, SUM_PRODUCT, ignore_zero_rows=True)

        from repro.query import MPFQuery, MPFView

        view = MPFView("invest", tiny_supply_chain.tables, SUM_PRODUCT)
        query = MPFQuery(view, ("wid",))
        report = db.run_hypothetical(
            query, measure_updates={"transporters": ({"tid": 0}, 9.0)}
        )
        patched = [
            alter_measure(db.catalog.relation(t), {"tid": 0}, 9.0)
            if t == "transporters" else db.catalog.relation(t)
            for t in tiny_supply_chain.tables
        ]
        expected = marginalize(
            reduce(lambda a, b: product_join(a, b, SUM_PRODUCT), patched),
            ["wid"],
            SUM_PRODUCT,
        )
        assert report.result.equals(expected, SUM_PRODUCT)
