"""Numeric and structural edge cases across the stack."""

import numpy as np
import pytest

from repro.algebra import marginalize, product_join
from repro.catalog import Catalog
from repro.data import FunctionalRelation, complete_relation, var
from repro.errors import QueryError
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination
from repro.plans import (
    ExecutionContext,
    GroupBy,
    IndexScan,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
    evaluate,
    execute,
)
from repro.semiring import MIN_SUM, SUM_PRODUCT


class TestDegenerateDomains:
    def test_domain_of_size_one(self):
        a, b = var("a", 1), var("b", 3)
        s1 = complete_relation([a, b], name="s1")
        s2 = complete_relation([b], name="s2")
        cat = Catalog()
        cat.register_all([s1, s2])
        spec = QuerySpec(tables=("s1", "s2"), query_vars=("a",))
        result = CSPlusNonlinear().optimize(spec, cat)
        got, _ = execute(result.plan, cat, SUM_PRODUCT)
        assert got.ntuples == 1

    def test_single_row_relations(self):
        a, b = var("a", 5), var("b", 5)
        s1 = FunctionalRelation.from_rows([a, b], [(2, 3, 4.0)], name="s1")
        s2 = FunctionalRelation.from_rows([b], [(3, 2.0)], name="s2")
        cat = Catalog()
        cat.register_all([s1, s2])
        spec = QuerySpec(tables=("s1", "s2"), query_vars=("a",))
        for opt in (CSPlusNonlinear(), VariableElimination("degree")):
            result = opt.optimize(spec, cat)
            got, _ = execute(result.plan, cat, SUM_PRODUCT)
            assert got.to_dict() == {(2,): 8.0}

    def test_empty_join_result_through_plan(self):
        a, b = var("a", 3), var("b", 3)
        s1 = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0)], name="s1")
        s2 = FunctionalRelation.from_rows([b], [(2, 1.0)], name="s2")
        cat = Catalog()
        cat.register_all([s1, s2])
        spec = QuerySpec(tables=("s1", "s2"), query_vars=("a",))
        result = CSPlusNonlinear().optimize(spec, cat)
        got, _ = execute(result.plan, cat, SUM_PRODUCT)
        assert got.ntuples == 0

    def test_selection_matching_nothing(self, tiny_supply_chain):
        sc = tiny_supply_chain
        # tid value outside every ctdeals row may still be in domain.
        missing = None
        deals = sc.catalog.relation("ctdeals")
        present = set(deals.columns["tid"].tolist())
        for code in range(sc.catalog.variable("tid").size):
            if code not in present:
                missing = code
                break
        if missing is None:
            pytest.skip("ctdeals covers every tid at this seed")
        spec = QuerySpec(
            tables=sc.tables, query_vars=("cid",),
            selections={"tid": missing},
        )
        result = CSPlusNonlinear().optimize(spec, sc.catalog)
        got, _ = execute(result.plan, sc.catalog, SUM_PRODUCT)
        assert got.ntuples == 0


class TestEmptyRelationsThroughOperators:
    """A zero-tuple relation must flow through every physical operator."""

    @pytest.fixture
    def env(self):
        a, b, c = var("a", 3), var("b", 4), var("c", 2)
        rng = np.random.default_rng(9)
        return {
            "empty": FunctionalRelation.from_rows([a, b], [], name="empty"),
            "full": complete_relation([b, c], rng=rng, name="full"),
        }

    def _eval(self, plan, env):
        return evaluate(plan, ExecutionContext(env, SUM_PRODUCT))

    def test_scan_empty(self, env):
        out = self._eval(Scan("empty"), env)
        assert out.ntuples == 0 and out.arity == 2

    def test_select_on_empty(self, env):
        out = self._eval(Select(Scan("empty"), {"a": 1}), env)
        assert out.ntuples == 0

    def test_product_join_empty_either_side(self, env):
        for plan in (
            ProductJoin(Scan("empty"), Scan("full")),
            ProductJoin(Scan("full"), Scan("empty")),
            ProductJoin(Scan("empty"), Scan("full"), method="sort_merge"),
        ):
            out = self._eval(plan, env)
            assert out.ntuples == 0
            assert set(v.name for v in out.variables) == {"a", "b", "c"}

    def test_group_by_empty_both_methods(self, env):
        for method in GroupBy.GROUP_METHODS:
            out = self._eval(
                GroupBy(Scan("empty"), ["a"], method=method), env
            )
            assert out.ntuples == 0

    def test_group_by_to_scalar_on_empty(self, env):
        # Full marginalization of nothing: the empty sum, i.e. the
        # semiring's additive identity.
        out = self._eval(GroupBy(Scan("empty"), []), env)
        assert out.ntuples == 1
        assert out.measure[0] == SUM_PRODUCT.zero

    def test_semijoin_empty_target_and_source(self, env):
        for kind in SemiJoin.KINDS:
            out = self._eval(
                SemiJoin(Scan("empty"), Scan("full"), kind), env
            )
            assert out.ntuples == 0
        out = self._eval(
            SemiJoin(Scan("full"), Scan("empty"), "product"), env
        )
        assert out.ntuples == 0  # no matching source groups survive

    def test_index_scan_on_empty_relation(self, env):
        cat = Catalog()
        cat.register(env["empty"])
        cat.create_index("empty", "a")
        got, _ = execute(IndexScan("empty", {"a": 0}), cat, SUM_PRODUCT)
        assert got.ntuples == 0

    def test_full_pipeline_over_empty_base(self, env):
        plan = GroupBy(
            Select(ProductJoin(Scan("empty"), Scan("full")), {"c": 1}),
            ["a"],
        )
        out = self._eval(plan, env)
        assert out.ntuples == 0


class TestZeroProbabilityEvidence:
    def test_impossible_evidence_raises_query_error(self):
        from repro.bayes import BayesianNetwork, MPFInference
        from repro.bayes.cpd import CPD

        # B is deterministically equal to A; evidence {A=0, B=1} has
        # zero mass, so the posterior cannot be normalized.
        A, B = var("A", 2), var("B", 2)
        bn = BayesianNetwork(
            [
                CPD(A, (), np.array([0.5, 0.5])),
                CPD(B, (A,), np.array([[1.0, 0.0], [0.0, 1.0]])),
            ]
        )
        mpf = MPFInference(bn)
        with pytest.raises(QueryError, match="zero"):
            mpf.query("A", evidence={"A": 0, "B": 1})

    def test_possible_evidence_still_fine(self):
        from repro.bayes import BayesianNetwork, MPFInference
        from repro.bayes.cpd import CPD

        A, B = var("A", 2), var("B", 2)
        bn = BayesianNetwork(
            [
                CPD(A, (), np.array([0.5, 0.5])),
                CPD(B, (A,), np.array([[1.0, 0.0], [0.0, 1.0]])),
            ]
        )
        posterior = MPFInference(bn).query("A", evidence={"B": 1})
        assert posterior.value_at({"A": 1}) == pytest.approx(1.0)


class TestBatchSizeExtremes:
    def _database(self):
        from repro.engine import Database
        from repro.query import MPFQuery, MPFView

        rng = np.random.default_rng(4)
        a, b = var("a", 3), var("b", 4)
        db = Database()
        db.register(complete_relation([a, b], rng=rng, name="r_ab"))
        db.create_view("v", ("r_ab",))
        view = MPFView("v", db._views["v"].view_tables, SUM_PRODUCT)
        return db, MPFQuery(view, ("a",))

    def test_empty_batch_rejected(self):
        db, _ = self._database()
        with pytest.raises(QueryError, match="at least one"):
            db.run_batch([])

    def test_single_query_batch_matches_solo_run(self):
        db, query = self._database()
        batch = db.run_batch([query])
        assert len(batch.succeeded) == 1 and not batch.failed
        solo = self._database()[0].run_query(query)
        assert batch.reports[0].result.equals(solo.result, SUM_PRODUCT)


class TestNumericExtremes:
    def test_huge_measures_do_not_overflow_into_nan(self):
        a, b = var("a", 3), var("b", 3)
        s1 = complete_relation(
            [a, b], measure_fn=lambda c: np.full(9, 1e150)
        ).with_name("s1")
        s2 = complete_relation(
            [b], measure_fn=lambda c: np.full(3, 1e150)
        ).with_name("s2")
        joined = product_join(s1, s2, SUM_PRODUCT)
        # 1e300 is representable; the sum as well.
        assert np.isfinite(joined.measure).all()

    def test_min_sum_with_infinities(self):
        a = var("a", 2)
        s1 = FunctionalRelation.from_rows(
            [a], [(0, np.inf), (1, 3.0)], name="s1"
        )
        s2 = FunctionalRelation.from_rows(
            [a], [(0, 1.0), (1, 2.0)], name="s2"
        )
        joined = product_join(s1, s2, MIN_SUM)
        total = marginalize(joined, [], MIN_SUM)
        assert total.measure[0] == 5.0  # the a=0 path is "blocked"

    def test_zero_probability_rows_flow_through(self):
        a, b = var("a", 2), var("b", 2)
        s1 = FunctionalRelation.from_rows(
            [a, b], [(0, 0, 0.0), (0, 1, 1.0), (1, 0, 0.5), (1, 1, 0.5)],
            name="s1",
        )
        s2 = FunctionalRelation.from_rows(
            [b], [(0, 0.25), (1, 0.75)], name="s2"
        )
        out = marginalize(product_join(s1, s2, SUM_PRODUCT), ["a"],
                          SUM_PRODUCT)
        assert out.value_at({"a": 0}) == pytest.approx(0.75)
        assert out.value_at({"a": 1}) == pytest.approx(0.125 + 0.375)


class TestWideSchemas:
    def test_many_tables_linear_chain(self):
        """A 9-table chain exercises bitmask DP breadth."""
        rng = np.random.default_rng(0)
        variables = [var(f"v{i}", 3) for i in range(10)]
        cat = Catalog()
        names = []
        for i in range(9):
            rel = complete_relation(
                [variables[i], variables[i + 1]], rng=rng, name=f"t{i}"
            )
            names.append(cat.register(rel))
        spec = QuerySpec(tables=tuple(names), query_vars=("v0",))
        ve = VariableElimination("width").optimize(spec, cat)
        got, _ = execute(ve.plan, cat, SUM_PRODUCT)
        assert got.ntuples == 3

    def test_repeated_variable_across_many_tables(self):
        rng = np.random.default_rng(1)
        hub = var("h", 4)
        cat = Catalog()
        names = []
        for i in range(6):
            other = var(f"u{i}", 3)
            rel = complete_relation([hub, other], rng=rng, name=f"t{i}")
            names.append(cat.register(rel))
        spec = QuerySpec(tables=tuple(names), query_vars=("h",))
        result = VariableElimination("width").optimize(spec, cat)
        got, _ = execute(result.plan, cat, SUM_PRODUCT)
        from functools import reduce

        joint = reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            [cat.relation(t) for t in names],
        )
        assert got.equals(
            marginalize(joint, ["h"], SUM_PRODUCT), SUM_PRODUCT
        )
