"""Registry / IOStats agreement across the engine and workload layers.

The acceptance criterion for the observability layer: the ``query.*``
counters published per completed operator must sum to exactly what the
:class:`IOStats` clocks recorded — reads, writes, buffer hits, and
retries — on clean runs, shared-subplan batches, and fault-injected
runs that recover through retries.
"""

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.engine import Database
from repro.errors import PermanentStorageError
from repro.plans import QueryGuard
from repro.plans.runtime import ExecutionContext
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage import BufferPool, FaultInjector, PageId
from repro.workload import (
    belief_propagation,
    build_junction_tree,
    build_ve_cache,
)


def _relations():
    rng = np.random.default_rng(20260806)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    return [
        complete_relation([a, b], rng=rng, name="r_ab"),
        complete_relation([b, c], rng=rng, name="r_bc"),
        complete_relation([c, d], rng=rng, name="r_cd"),
    ]


def _database(injector=None):
    db = Database(pool=BufferPool(injector=injector))
    for rel in _relations():
        db.register(rel)
    db.create_view("left_view", ("r_ab", "r_bc"))
    db.create_view("chain_view", ("r_ab", "r_bc", "r_cd"))
    return db


def _query(db, view_name, *group_by, **selections):
    view = MPFView(
        view_name, db._views[view_name].view_tables, SUM_PRODUCT
    )
    return MPFQuery(view, tuple(group_by), selections=selections)


def _assert_io_agreement(snap, totals):
    """Registry query.* counters == the summed IOStats clocks."""
    assert snap.get("query.page_reads") == totals.page_reads
    assert snap.get("query.page_writes") == totals.page_writes
    assert snap.get("query.buffer_hits") == totals.buffer_hits
    assert snap.get("query.tuples") == totals.tuples_processed
    assert snap.get("query.memo_hits") == totals.memo_hits
    assert snap.get("query.retries") == totals.retries
    assert snap.get("query.retry_wait") == pytest.approx(totals.retry_wait)


class TestRegistryAgreesWithIOStats:
    def test_clean_queries(self):
        db = _database()
        reports = [
            db.run_query(_query(db, "left_view", "a")),
            db.run_query(_query(db, "chain_view", "d")),
            db.run_query(_query(db, "left_view", "c", a=1)),
        ]
        totals = reports[0].exec_stats
        for report in reports[1:]:
            totals = totals.merged_with(report.exec_stats)
        snap = db.metrics_snapshot()
        _assert_io_agreement(snap, totals)
        # The pool sees exactly the operator-level page traffic.
        assert snap.get("bufferpool.reads") == totals.page_reads
        assert snap.get("bufferpool.writes") == totals.page_writes
        assert snap.get("bufferpool.hits") == totals.buffer_hits
        assert snap.get("queries.total", status="ok") == 3
        assert snap.get("queries.total", status="error") == 0
        ops = sum(
            snap.get("query.operator_runs", operator=kind)
            for kind in ("Scan", "Select", "ProductJoin", "GroupBy",
                         "IndexScan", "SemiJoin")
        )
        assert ops == totals.operators_run

    def test_shared_subplan_batch(self):
        db = _database()
        batch = db.run_batch(
            [
                _query(db, "left_view", "a"),
                _query(db, "left_view", "a"),   # fully memoized repeat
                _query(db, "chain_view", "d"),
            ]
        )
        assert all(r.ok for r in batch.reports)
        totals = batch.reports[0].exec_stats
        for report in batch.reports[1:]:
            totals = totals.merged_with(report.exec_stats)
        snap = db.metrics_snapshot()
        _assert_io_agreement(snap, totals)
        assert snap.get("query.memo_hits") == batch.memo_hits
        assert snap.get("batches.total") == 1
        assert snap.get("batch.shared_subplans") > 0

    def test_transient_faults_retries_agree(self):
        injector = FaultInjector()
        db = _database(injector=injector)
        heapfile = db.catalog.heapfile("r_ab")
        for page_no in range(heapfile.n_pages):
            injector.fail_page(PageId(heapfile.file_id, page_no), times=2)

        report = db.run_query(
            _query(db, "left_view", "a"), guard=QueryGuard(retry_budget=1000)
        )
        assert report.ok
        assert report.exec_stats.retries > 0
        snap = db.metrics_snapshot()
        _assert_io_agreement(snap, report.exec_stats)
        assert snap.get("faults.transient") == injector.transient_injected
        assert snap.get("guard.retries_used") == report.exec_stats.retries
        assert snap.get("guard.budget_consumed") == pytest.approx(
            report.exec_stats.elapsed()
        )

    def test_failed_query_counts_error_status(self):
        injector = FaultInjector()
        db = _database(injector=injector)
        injector.fail_file(db.catalog.heapfile("r_ab").file_id)
        with pytest.raises(PermanentStorageError):
            db.run_query(_query(db, "left_view", "a"))
        snap = db.metrics_snapshot()
        assert snap.get("queries.total", status="error") == 1
        assert snap.get("queries.total", status="ok") == 0
        assert snap.get("faults.permanent") >= 1


class TestPlanCacheCounters:
    def test_hits_misses_invalidations(self, rng):
        db = _database()
        query = _query(db, "left_view", "a")
        db.run_query(query, use_plan_cache=True)
        db.run_query(query, use_plan_cache=True)
        snap = db.metrics_snapshot()
        assert snap.get("plan_cache.misses") == 1
        assert snap.get("plan_cache.hits") == 1

        db.reload_table(
            complete_relation([var("a", 6), var("b", 5)], rng=rng,
                              name="r_ab")
        )
        snap = db.metrics_snapshot()
        assert snap.get("plan_cache.invalidations") == 1
        db.run_query(query, use_plan_cache=True)
        assert db.metrics_snapshot().get("plan_cache.misses") == 2


class TestWorkloadCounters:
    def test_bp_message_counters(self, chain_relations):
        from repro.obs.metrics import MetricsRegistry

        ctx = ExecutionContext({}, SUM_PRODUCT, metrics=MetricsRegistry())
        result = belief_propagation(
            chain_relations, SUM_PRODUCT, context=ctx
        )
        snap = ctx.metrics.snapshot()
        messages = sum(
            snap.get("bp.messages", kind=kind)
            for kind in ("product", "update")
        )
        assert messages == len(result.program)
        assert snap.get("bp.failures") == 0
        # Workload operators publish through the same runtime path.
        _assert_io_agreement(snap, ctx.stats)

    def test_vecache_counters(self, chain_relations):
        from repro.obs.metrics import MetricsRegistry

        ctx = ExecutionContext({}, SUM_PRODUCT, metrics=MetricsRegistry())
        cache = build_ve_cache(chain_relations, SUM_PRODUCT, context=ctx)
        snap = ctx.metrics.snapshot()
        assert snap.get("vecache.steps") == len(cache.tables)
        assert snap.get("vecache.tables") == len(cache.tables)

    def test_junction_clique_counter(self, cyclic_supply_chain):
        from repro.obs.metrics import MetricsRegistry

        sc = cyclic_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        ctx = ExecutionContext({}, SUM_PRODUCT, metrics=MetricsRegistry())
        tree = build_junction_tree(relations, SUM_PRODUCT, context=ctx)
        snap = ctx.metrics.snapshot()
        assert snap.get("junction.cliques") == len(tree.cliques)
