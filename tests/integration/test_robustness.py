"""Acceptance tests for the robustness layer (guards + fault injection).

Three scenarios the PR must demonstrate end to end:

(a) seeded transient page faults are retried with backoff and the
    query still returns the correct marginal;
(b) a permanent fault fails *only* the affected query of a 4-query
    batch — the other three results are identical to a fault-free run;
(c) a blown deadline raises :class:`QueryTimeout` promptly and does
    not corrupt the runtime memo for subsequent queries.
"""

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.engine import Database
from repro.errors import (
    PermanentStorageError,
    QueryTimeout,
    TransientStorageError,
)
from repro.plans import QueryGuard
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT
from repro.storage import BufferPool, FaultInjector, PageId


def _relations():
    rng = np.random.default_rng(20260806)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    x, y, z = var("x", 30), var("y", 30), var("z", 30)
    return [
        complete_relation([a, b], rng=rng, name="r_ab"),
        complete_relation([b, c], rng=rng, name="r_bc"),
        complete_relation([c, d], rng=rng, name="r_cd"),
        complete_relation([x, y], rng=rng, name="b_xy"),
        complete_relation([y, z], rng=rng, name="b_yz"),
    ]


def _database(injector=None):
    db = Database(pool=BufferPool(injector=injector))
    for rel in _relations():
        db.register(rel)
    db.create_view("left_view", ("r_ab", "r_bc"))
    db.create_view("right_view", ("r_bc", "r_cd"))
    db.create_view("big_view", ("b_xy", "b_yz"))
    db.create_view("big_left_view", ("b_xy",))
    return db


def _query(db, view_name, *group_by, **selections):
    view = MPFView(
        view_name, db._views[view_name].view_tables, SUM_PRODUCT
    )
    return MPFQuery(view, tuple(group_by), selections=selections)


class TestTransientFaultsRecovered:
    """Scenario (a): flaky pages, correct marginal, retries on the clock."""

    def test_query_survives_transient_faults(self):
        clean = _database().run_query(_query(_database(), "left_view", "a"))

        injector = FaultInjector()
        db = _database(injector=injector)
        file_id = db.catalog.heapfile("r_ab").file_id
        n_pages = db.catalog.heapfile("r_ab").n_pages
        for page_no in range(n_pages):
            injector.fail_page(PageId(file_id, page_no), times=2)

        guard = QueryGuard(retry_budget=1000)
        report = db.run_query(_query(db, "left_view", "a"), guard=guard)
        assert report.ok
        assert report.result.equals(clean.result, SUM_PRODUCT)
        assert report.exec_stats.retries >= n_pages * 2
        assert report.exec_stats.retry_wait > 0
        assert injector.transient_injected >= n_pages * 2

    def test_retry_budget_exhaustion_surfaces_the_fault(self):
        injector = FaultInjector()
        db = _database(injector=injector)
        file_id = db.catalog.heapfile("r_ab").file_id
        n_pages = db.catalog.heapfile("r_ab").n_pages
        for page_no in range(n_pages):
            injector.fail_page(PageId(file_id, page_no), times=2)

        with pytest.raises(TransientStorageError):
            db.run_query(
                _query(db, "left_view", "a"),
                guard=QueryGuard(retry_budget=0),
            )


class TestPermanentFaultIsolatedInBatch:
    """Scenario (b): one bad file fails one query out of four."""

    def _batch(self, db):
        return [
            _query(db, "right_view", "c"),
            _query(db, "left_view", "a"),   # the only user of r_ab
            _query(db, "right_view", "d"),
            _query(db, "right_view", "d", c=1),
        ]

    def test_only_affected_query_fails(self):
        clean_db = _database()
        clean = clean_db.run_batch(self._batch(clean_db))
        assert all(r.ok for r in clean.reports)

        injector = FaultInjector()
        db = _database(injector=injector)
        injector.fail_file(db.catalog.heapfile("r_ab").file_id)

        batch = db.run_batch(self._batch(db))
        assert [r.ok for r in batch.reports] == [True, False, True, True]
        assert isinstance(batch.reports[1].error, PermanentStorageError)
        assert batch.errors[1] is batch.reports[1].error
        for i in (0, 2, 3):
            assert batch.reports[i].result.equals(
                clean.reports[i].result, SUM_PRODUCT
            )

    def test_stop_on_error_restores_fail_fast(self):
        injector = FaultInjector()
        db = _database(injector=injector)
        injector.fail_file(db.catalog.heapfile("r_ab").file_id)
        with pytest.raises(PermanentStorageError):
            db.run_batch(self._batch(db), stop_on_error=True)

    def test_healed_fault_allows_rerun_on_same_database(self):
        injector = FaultInjector()
        db = _database(injector=injector)
        injector.fail_file(db.catalog.heapfile("r_ab").file_id)
        failed = db.run_batch(self._batch(db))
        assert not failed.reports[1].ok

        injector.heal()
        recovered = db.run_query(_query(db, "left_view", "a"))
        clean_db = _database()
        clean = clean_db.run_query(_query(clean_db, "left_view", "a"))
        assert recovered.result.equals(clean.result, SUM_PRODUCT)


class TestDeadlineDoesNotCorruptMemo:
    """Scenario (c): QueryTimeout mid-batch, later queries unharmed."""

    # Between the cheap queries (~2.2k simulated cost units) and the
    # big_view marginal (~27k solo); the big query crosses it after a
    # few operators, so the next per-operator guard check fires.
    BUDGET = 15_000.0

    def test_budget_calibration(self):
        db = _database()
        cheap = db.run_query(_query(db, "right_view", "c"))
        assert cheap.exec_stats.elapsed() < self.BUDGET
        db2 = _database()
        expensive = db2.run_query(_query(db2, "big_view", "x"))
        assert expensive.exec_stats.elapsed() > self.BUDGET

    def test_timeout_fails_one_query_others_complete(self):
        clean_db = _database()
        clean = clean_db.run_batch(
            [
                _query(clean_db, "right_view", "c"),
                _query(clean_db, "big_view", "x"),
                _query(clean_db, "right_view", "c"),
            ]
        )

        db = _database()
        batch = db.run_batch(
            [
                _query(db, "right_view", "c"),
                _query(db, "big_view", "x"),
                _query(db, "right_view", "c"),
            ],
            guard=QueryGuard(cost_budget=self.BUDGET),
        )
        assert [r.ok for r in batch.reports] == [True, False, True]
        assert isinstance(batch.reports[1].error, QueryTimeout)
        # The repeated cheap query is served from the memo — proof the
        # timed-out query left no partial state behind.
        assert batch.reports[2].exec_stats.operators_run == 0
        for i in (0, 2):
            assert batch.reports[i].result.equals(
                clean.reports[i].result, SUM_PRODUCT
            )

    def test_subsequent_query_sharing_subplans_is_correct(self):
        db = _database()
        batch = db.run_batch(
            [
                _query(db, "right_view", "c"),
                _query(db, "big_view", "x"),      # times out mid-plan
                # Shares the Scan(b_xy) subplan with the failed query:
                # only *completed* operators were memoized, so this
                # must still compute the correct marginal.
                _query(db, "big_left_view", "x"),
            ],
            guard=QueryGuard(cost_budget=self.BUDGET),
        )
        assert not batch.reports[1].ok
        assert batch.reports[2].ok
        clean_db = _database()
        clean = clean_db.run_query(_query(clean_db, "big_left_view", "x"))
        assert batch.reports[2].result.equals(clean.result, SUM_PRODUCT)

    def test_failed_query_succeeds_with_generous_guard(self):
        db = _database()
        with pytest.raises(QueryTimeout):
            db.run_query(
                _query(db, "big_view", "x"),
                guard=QueryGuard(cost_budget=self.BUDGET),
            )
        # Same database, same pool, generous window: correct answer.
        report = db.run_query(
            _query(db, "big_view", "x"),
            guard=QueryGuard(cost_budget=10**12),
        )
        clean_db = _database()
        clean = clean_db.run_query(_query(clean_db, "big_view", "x"))
        assert report.result.equals(clean.result, SUM_PRODUCT)


class TestGuardedWorkloadErrorsCarryContext:
    """Guard/storage errors inside propagations name the failing unit."""

    def test_bp_message_context(self, chain_relations):
        from repro.plans.runtime import ExecutionContext
        from repro.workload import belief_propagation

        guard = QueryGuard(cost_budget=1.0)
        ctx = ExecutionContext({}, SUM_PRODUCT, guard=guard)
        guard.restart(ctx.stats)
        ctx.stats.charge_cpu(100)  # already over budget
        with pytest.raises(QueryTimeout) as excinfo:
            belief_propagation(chain_relations, SUM_PRODUCT, context=ctx)
        assert "BP message" in str(excinfo.value)

    def test_bp_keep_going_records_failures(self, chain_relations):
        from repro.plans.runtime import ExecutionContext
        from repro.workload import belief_propagation

        # Every page of every (ad-hoc temp) file faults more times
        # than the retry policy tolerates: every message fails, but
        # keep_going collects the failures instead of aborting.
        injector = FaultInjector(
            transient_rate=1.0, transient_failures=10_000
        )
        pool = BufferPool(injector=injector)
        ctx = ExecutionContext({}, SUM_PRODUCT, pool=pool)
        result = belief_propagation(
            chain_relations, SUM_PRODUCT, context=ctx, keep_going=True
        )
        assert not result.ok
        assert len(result.failures) == len(result.program)
        for failure in result.failures:
            assert isinstance(failure.error, TransientStorageError)
            assert "BP message" in str(failure.error)
        # Tables were never clobbered by half-delivered messages.
        for original in chain_relations:
            assert result.tables[original.name] is original

    def test_bp_keep_going_clean_run_has_no_failures(self, chain_relations):
        from repro.workload import belief_propagation

        result = belief_propagation(
            chain_relations, SUM_PRODUCT, keep_going=True
        )
        assert result.ok
        assert result.failures == []

    def test_vecache_step_context(self, chain_relations):
        from repro.plans.runtime import ExecutionContext
        from repro.workload import build_ve_cache

        guard = QueryGuard(cost_budget=1.0)
        ctx = ExecutionContext({}, SUM_PRODUCT, guard=guard)
        guard.restart(ctx.stats)
        ctx.stats.charge_cpu(100)
        with pytest.raises(QueryTimeout) as excinfo:
            build_ve_cache(chain_relations, SUM_PRODUCT, context=ctx)
        assert "VE-cache step" in str(excinfo.value)

    def test_junction_clique_context(self, cyclic_supply_chain):
        from repro.plans.runtime import ExecutionContext
        from repro.workload import build_junction_tree

        sc = cyclic_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        guard = QueryGuard(cost_budget=1.0)
        ctx = ExecutionContext({}, SUM_PRODUCT, guard=guard)
        guard.restart(ctx.stats)
        ctx.stats.charge_cpu(100)
        with pytest.raises(QueryTimeout) as excinfo:
            build_junction_tree(relations, SUM_PRODUCT, context=ctx)
        assert "clique" in str(excinfo.value)


class TestInferenceUnderGuard:
    def test_bayes_query_accepts_guard(self):
        from repro.bayes import MPFInference, figure2_network

        mpf = MPFInference(figure2_network())
        posterior = mpf.query(
            "C", evidence={"A": 0}, guard=QueryGuard(cost_budget=10**9)
        )
        baseline = mpf.query("C", evidence={"A": 0})
        assert np.allclose(posterior.measure, baseline.measure)

    def test_bayes_query_times_out(self):
        from repro.bayes import MPFInference, figure2_network

        mpf = MPFInference(figure2_network())
        with pytest.raises(QueryTimeout):
            mpf.query("C", guard=QueryGuard(cost_budget=0.0))
