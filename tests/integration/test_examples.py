"""Guard tests: every example script runs to completion in-process."""

import runpy
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name, argv=None, monkeypatch=None, capsys=None):
    if monkeypatch is not None and argv is not None:
        monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out if capsys else ""


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys=capsys)
    assert "Cheapest landed cost" in out
    assert "Strategy comparison" in out
    assert "GroupBy(product)" in out


def test_supply_chain(monkeypatch, capsys):
    out = _run(
        "supply_chain.py", argv=["0.005"], monkeypatch=monkeypatch,
        capsys=capsys,
    )
    assert "minimum investment on each part" in out
    assert "plan-linearity test" in out
    assert "cs+nonlinear" in out


def test_bayesian_inference(capsys):
    out = _run("bayesian_inference.py", capsys=capsys)
    assert "Pr(C=0 | A=0) = 0.9000" in out
    assert "matches brute force: True" in out
    assert "MISMATCH" not in out
    assert "Structure learning" in out


def test_workload_cache(capsys):
    out = _run("workload_cache.py", capsys=capsys)
    assert "ctdeals ⋉* transporters" in out       # Figure 11 step 1
    assert "Definition 5 invariant holds: True" in out
    assert "invariant holds on cyclic schema: False" in out  # Figure 12
    assert "BP over the junction tree restores the invariant: True" in out
    assert "cache advantage" in out
