"""Unit tests for the catalog and table statistics."""

import pytest

from repro.catalog import Catalog, TableStats
from repro.data import complete_relation, random_relation, var
from repro.errors import CatalogError, SchemaError


class TestTableStats:
    def test_from_relation_exact(self, rng):
        rel = random_relation([var("a", 10), var("b", 5)], 0.5, rng, name="r")
        stats = TableStats.from_relation(rel)
        assert stats.cardinality == rel.ntuples
        assert stats.domain_size("a") == 10
        assert stats.distinct_count("a") <= 10

    def test_complete_relation_stats(self):
        rel = complete_relation([var("a", 4), var("b", 3)], name="r")
        stats = TableStats.from_relation(rel)
        assert stats.is_complete()
        assert stats.distinct_count("a") == 4

    def test_distinct_cannot_exceed_domain(self):
        with pytest.raises(CatalogError):
            TableStats("bad", 10, {"a": 3}, {"a": 5.0})

    def test_var_sets_must_agree(self):
        with pytest.raises(CatalogError):
            TableStats("bad", 10, {"a": 3}, {})

    def test_unknown_variable_lookup(self):
        stats = TableStats("r", 10, {"a": 3}, {"a": 3.0})
        with pytest.raises(CatalogError):
            stats.domain_size("z")
        with pytest.raises(CatalogError):
            stats.distinct_count("z")

    def test_renamed(self):
        stats = TableStats("r", 10, {"a": 3}, {"a": 3.0})
        assert stats.renamed("q").name == "q"


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog()
        rel = complete_relation([var("a", 3)], name="r")
        cat.register(rel)
        assert "r" in cat
        assert cat.relation("r").ntuples == 3
        assert cat.stats("r").cardinality == 3
        assert cat.heapfile("r").ntuples == 3

    def test_register_requires_name(self):
        cat = Catalog()
        rel = complete_relation([var("a", 3)])
        with pytest.raises(CatalogError):
            cat.register(rel)
        assert cat.register(rel, name="explicit") == "explicit"

    def test_duplicate_name_rejected(self):
        cat = Catalog()
        rel = complete_relation([var("a", 3)], name="r")
        cat.register(rel)
        with pytest.raises(CatalogError):
            cat.register(rel)

    def test_conflicting_domain_rejected(self):
        cat = Catalog()
        cat.register(complete_relation([var("a", 3)], name="r1"))
        with pytest.raises(SchemaError):
            cat.register(complete_relation([var("a", 5)], name="r2"))

    def test_unknown_table(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.relation("nope")

    def test_tables_with_variable(self, tiny_supply_chain):
        cat = tiny_supply_chain.catalog
        assert set(cat.tables_with_variable("pid")) == {
            "contracts", "location",
        }
        assert set(cat.tables_with_variable("tid")) == {
            "transporters", "ctdeals",
        }

    def test_smallest_table_with_variable(self, tiny_supply_chain):
        cat = tiny_supply_chain.catalog
        smallest = cat.smallest_table_with_variable("tid")
        assert smallest.name == "transporters"

    def test_no_table_with_variable(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.smallest_table_with_variable("ghost")

    def test_environment_returns_all(self, tiny_supply_chain):
        env = tiny_supply_chain.catalog.environment()
        assert set(env) == set(tiny_supply_chain.tables)

    def test_variable_lookup(self, tiny_supply_chain):
        cat = tiny_supply_chain.catalog
        assert cat.variable("cid").size >= 5
        with pytest.raises(CatalogError):
            cat.variable("ghost")
