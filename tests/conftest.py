"""Shared fixtures for the test suite.

Scales are deliberately tiny: every relative size relationship of the
paper's Table 1 is preserved (contracts ≈ |pid|, location = 10×
contracts, ctdeals complete over cid×tid, ...), but joints stay small
enough to compare against brute-force oracles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.groupindex import DEFAULT_GROUP_INDEX_CACHE
from repro.data import complete_relation, var
from repro.datagen import linear_view, multistar_view, star_view, supply_chain


@pytest.fixture(autouse=True)
def _fresh_group_index_cache():
    """Isolate the process-wide kernel cache per test.

    Hit/miss/eviction counters (and eviction behavior near the budget)
    must not depend on which tests ran earlier in the process.
    """
    DEFAULT_GROUP_INDEX_CACHE.clear()
    yield
    DEFAULT_GROUP_INDEX_CACHE.clear()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_supply_chain():
    """Supply chain small enough to materialize the full invest view."""
    return supply_chain(scale=0.004, seed=7)


@pytest.fixture
def cyclic_supply_chain():
    """The stdeals-extended (cyclic) schema of Figures 12-15."""
    return supply_chain(scale=0.004, seed=7, include_stdeals=True)


@pytest.fixture
def chain_relations(rng):
    """Three complete FRs forming a chain a-b, b-c, c-d."""
    a, b, c, d = var("a", 3), var("b", 4), var("c", 2), var("d", 3)
    return [
        complete_relation([a, b], rng=rng, name="s1"),
        complete_relation([b, c], rng=rng, name="s2"),
        complete_relation([c, d], rng=rng, name="s3"),
    ]


@pytest.fixture
def synthetic_views():
    """The Section 7.3 trio at reduced domain size for fast tests."""
    return {
        "star": star_view(n_tables=4, domain_size=5),
        "multistar": multistar_view(n_tables=4, domain_size=5),
        "linear": linear_view(n_tables=4, domain_size=5),
    }
