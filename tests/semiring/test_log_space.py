"""Log-space sum-product: property tests against the linear path.

The LOG_PROB semiring (logaddexp, +) must agree with SUM_PRODUCT on
every query where the linear computation doesn't underflow — and keep
working where it does.  Hypothesis drives random small networks and
random relation contents through both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes import (
    BruteForceInference,
    MPFInference,
    chain_network,
    random_network,
)
from repro.data import complete_relation, var
from repro.plans import ExecutionContext, GroupBy, ProductJoin, Scan, evaluate
from repro.semiring import LOG_PROB, SUM_PRODUCT


class TestLogSpaceAgreesWithLinear:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_network_marginals_match(self, seed):
        bn = random_network(n_variables=4, max_domain=3, seed=seed)
        linear = MPFInference(bn)
        log = MPFInference(bn, log_space=True)
        oracle = BruteForceInference(bn)
        for name in bn.variable_names:
            expected = oracle.query(name)
            assert np.allclose(
                log.query(name).measure, expected.measure, atol=1e-9
            )
            assert np.allclose(
                linear.query(name).measure, expected.measure, atol=1e-9
            )

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_evidence_queries_match(self, seed):
        bn = random_network(n_variables=4, max_domain=3, seed=seed)
        log = MPFInference(bn, log_space=True)
        oracle = BruteForceInference(bn)
        first = bn.variable_names[0]
        last = bn.variable_names[-1]
        expected = oracle.query(last, evidence={first: 0})
        got = log.query(last, evidence={first: 0})
        assert np.allclose(got.measure, expected.measure, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_plan_evaluation_commutes_with_log(self, seed):
        """exp(evaluate under LOG_PROB) == evaluate under SUM_PRODUCT."""
        rng = np.random.default_rng(seed)
        a, b, c = var("a", 3), var("b", 4), var("c", 2)
        s1 = complete_relation([a, b], rng=rng, name="s1")
        s2 = complete_relation([b, c], rng=rng, name="s2")
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])

        linear = evaluate(
            plan, ExecutionContext({"s1": s1, "s2": s2}, SUM_PRODUCT)
        )
        with np.errstate(divide="ignore"):
            log_env = {
                "s1": s1.with_measure(np.log(s1.measure)),
                "s2": s2.with_measure(np.log(s2.measure)),
            }
        logged = evaluate(plan, ExecutionContext(log_env, LOG_PROB))
        assert np.allclose(
            np.exp(logged.measure), linear.measure, rtol=1e-9
        )

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_map_query_matches_linear(self, seed):
        bn = random_network(n_variables=4, max_domain=3, seed=seed)
        linear = MPFInference(bn)
        log = MPFInference(bn, log_space=True)
        assert np.allclose(
            log.map_query(bn.variable_names[-1]).measure,
            linear.map_query(bn.variable_names[-1]).measure,
            atol=1e-9,
        )


class TestLogSpaceSurvivesUnderflow:
    def test_linear_product_underflows_log_does_not(self):
        """Measures around 1e-200: their product is 0 in float64."""
        a, b, c = var("a", 2), var("b", 2), var("c", 2)
        rng = np.random.default_rng(0)
        s1 = complete_relation([a, b], rng=rng, name="s1")
        s2 = complete_relation([b, c], rng=rng, name="s2")
        s1 = s1.with_measure(s1.measure * 1e-200)
        s2 = s2.with_measure(s2.measure * 1e-200)
        plan = GroupBy(ProductJoin(Scan("s1"), Scan("s2")), ["a"])

        linear = evaluate(
            plan, ExecutionContext({"s1": s1, "s2": s2}, SUM_PRODUCT)
        )
        assert np.all(linear.measure == 0.0)  # underflow wiped it out

        log_env = {
            "s1": s1.with_measure(np.log(s1.measure)),
            "s2": s2.with_measure(np.log(s2.measure)),
        }
        logged = evaluate(plan, ExecutionContext(log_env, LOG_PROB))
        assert np.all(np.isfinite(logged.measure))
        # The true magnitude is ~1e-400-ish: representable only in logs.
        assert np.all(logged.measure < -700)

    def test_deep_chain_posterior_matches_linear(self):
        """A 400-step chain: the log path stays exact end to end.

        Also a regression test for deep-plan handling — plans this
        deep used to blow the recursion limit in structural keys.
        """
        bn = chain_network(length=400, domain_size=2, seed=3)
        log = MPFInference(bn, log_space=True)
        linear = MPFInference(bn)
        posterior = log.query("X399")
        assert np.all(posterior.measure >= 0)
        assert posterior.measure.sum() == pytest.approx(1.0)
        assert np.allclose(
            posterior.measure, linear.query("X399").measure, atol=1e-9
        )
