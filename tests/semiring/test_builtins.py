"""Unit tests for the builtin semirings."""

import numpy as np
import pytest

from repro.errors import SemiringError
from repro.semiring import (
    ALL_SEMIRINGS,
    BOOLEAN,
    COUNTING,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_SUM,
    SUM_PRODUCT,
    by_name,
)


class TestLookup:
    def test_by_name_canonical(self):
        assert by_name("sum_product") is SUM_PRODUCT
        assert by_name("min_sum") is MIN_SUM

    def test_by_name_aggregate_alias(self):
        assert by_name("sum") is SUM_PRODUCT
        assert by_name("min") is MIN_SUM
        assert by_name("max") is MAX_SUM
        assert by_name("or") is BOOLEAN

    def test_by_name_case_insensitive(self):
        assert by_name("SUM") is SUM_PRODUCT

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("does_not_exist")


class TestIdentities:
    @pytest.mark.parametrize("s", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_additive_identity(self, s):
        a = np.array([s.one, s.zero], dtype=s.dtype)
        assert s.close(s.plus(a, s.zeros(2)), a)

    @pytest.mark.parametrize("s", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_multiplicative_identity(self, s):
        a = np.array([s.one, s.zero], dtype=s.dtype)
        assert s.close(s.times(a, s.ones(2)), a)

    @pytest.mark.parametrize("s", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_zero_annihilates(self, s):
        a = np.array([s.one], dtype=s.dtype)
        assert s.close(s.times(a, s.zeros(1)), s.zeros(1))


class TestDivision:
    def test_sum_product_divides(self):
        a = np.array([6.0, 0.0])
        b = np.array([2.0, 0.0])
        out = SUM_PRODUCT.divide(a, b)
        assert out[0] == pytest.approx(3.0)
        assert out[1] == 0.0  # 0/0 = 0 convention

    def test_min_sum_divides_by_subtraction(self):
        a = np.array([5.0, np.inf])
        b = np.array([2.0, np.inf])
        out = MIN_SUM.divide(a, b)
        assert out[0] == pytest.approx(3.0)
        assert out[1] == np.inf  # zero / zero = zero

    def test_boolean_has_no_division(self):
        assert not BOOLEAN.supports_division
        with pytest.raises(SemiringError):
            BOOLEAN.divide(np.array([True]), np.array([True]))

    def test_counting_has_no_division(self):
        assert not COUNTING.supports_division

    def test_max_product_divide(self):
        out = MAX_PRODUCT.divide(np.array([0.6]), np.array([0.3]))
        assert out[0] == pytest.approx(2.0)


class TestAggregate:
    def test_sum_groups(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        ids = np.array([0, 1, 0, 1])
        out = SUM_PRODUCT.aggregate(vals, ids, 2)
        assert out.tolist() == [4.0, 6.0]

    def test_min_groups(self):
        vals = np.array([3.0, 1.0, 2.0])
        ids = np.array([0, 0, 1])
        out = MIN_SUM.aggregate(vals, ids, 2)
        assert out.tolist() == [1.0, 2.0]

    def test_empty_group_gets_zero(self):
        out = MIN_SUM.aggregate(np.array([1.0]), np.array([1]), 3)
        assert out[0] == np.inf
        assert out[2] == np.inf

    def test_bool_groups(self):
        vals = np.array([False, True, False])
        ids = np.array([0, 0, 1])
        out = BOOLEAN.aggregate(vals, ids, 2)
        assert out.tolist() == [True, False]

    def test_empty_input(self):
        out = SUM_PRODUCT.aggregate(np.array([]), np.array([], dtype=np.int64), 2)
        assert out.tolist() == [0.0, 0.0]

    def test_reduce(self):
        assert SUM_PRODUCT.reduce(np.array([1.0, 2.0, 3.0])) == 6.0
        assert MIN_SUM.reduce(np.array([3.0, 1.0])) == 1.0
        assert SUM_PRODUCT.reduce(np.array([])) == 0.0

    def test_aggregate_without_plus_at_fallback(self):
        from repro.semiring.base import Semiring

        custom = Semiring(
            "custom_max", np.maximum, np.add, -np.inf, 0.0,
        )
        vals = np.array([1.0, 5.0, 2.0])
        ids = np.array([0, 0, 1])
        out = custom.aggregate(vals, ids, 2)
        assert out.tolist() == [5.0, 2.0]


class TestIdempotence:
    def test_flags(self):
        assert MIN_SUM.idempotent_plus
        assert not SUM_PRODUCT.idempotent_plus
        assert BOOLEAN.idempotent_times
        assert not MIN_SUM.idempotent_times

    def test_close_handles_shape_mismatch(self):
        assert not SUM_PRODUCT.close(np.array([1.0]), np.array([1.0, 2.0]))


class TestLogProb:
    def test_isomorphic_to_sum_product(self):
        """exp(plus_log(log a, log b)) == a + b, and times is ×."""
        from repro.semiring import LOG_PROB

        a, b = 0.3, 0.0625
        la, lb = np.log(a), np.log(b)
        assert np.exp(LOG_PROB.plus(la, lb)) == pytest.approx(a + b)
        assert np.exp(LOG_PROB.times(la, lb)) == pytest.approx(a * b)
        assert np.exp(
            LOG_PROB.divide(np.array([la]), np.array([lb]))
        )[0] == pytest.approx(a / b)

    def test_zero_and_one(self):
        from repro.semiring import LOG_PROB

        assert LOG_PROB.zero == -np.inf  # log 0
        assert LOG_PROB.one == 0.0       # log 1

    def test_aggregate_is_logsumexp(self):
        from repro.semiring import LOG_PROB

        vals = np.log(np.array([0.1, 0.2, 0.3]))
        ids = np.zeros(3, dtype=np.int64)
        out = LOG_PROB.aggregate(vals, ids, 1)
        assert np.exp(out[0]) == pytest.approx(0.6)

    def test_stable_on_tiny_probabilities(self):
        """200 factors of 1e-3 underflow linear space but not log
        space."""
        from repro.semiring import LOG_PROB, SUM_PRODUCT

        linear = np.prod(np.full(200, 1e-3))
        assert linear == 0.0  # underflow
        log_value = np.sum(np.log(np.full(200, 1e-3)))
        assert np.isfinite(log_value)
        # And the semiring reproduces it through times.
        acc = LOG_PROB.one
        for _ in range(200):
            acc = LOG_PROB.times(acc, np.log(1e-3))
        assert acc == pytest.approx(log_value)

    def test_marginalization_agrees_with_linear_space(self, rng=None):
        from repro.algebra import marginalize, product_join
        from repro.data import complete_relation, var
        from repro.semiring import LOG_PROB, SUM_PRODUCT

        rng = np.random.default_rng(4)
        a, b, c = var("a", 3), var("b", 4), var("c", 2)
        s1 = complete_relation([a, b], rng=rng, low=0.01, high=1.0)
        s2 = complete_relation([b, c], rng=rng, low=0.01, high=1.0)
        linear = marginalize(
            product_join(s1, s2, SUM_PRODUCT), ["a"], SUM_PRODUCT
        )
        l1 = s1.with_measure(np.log(s1.measure))
        l2 = s2.with_measure(np.log(s2.measure))
        logspace = marginalize(
            product_join(l1, l2, LOG_PROB), ["a"], LOG_PROB
        )
        assert np.allclose(
            np.exp(np.sort(logspace.measure)), np.sort(linear.measure)
        )
