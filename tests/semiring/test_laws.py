"""Property-based verification of the semiring laws (Section 2).

The MPF optimizations all rest on the commutative-semiring axioms —
especially distributivity, which is what lets GroupBys push through
product joins (the GDL).  Hypothesis draws measure values per semiring
and checks every axiom.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import (
    BOOLEAN,
    COUNTING,
    LOG_PROB,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PRODUCT,
    MIN_SUM,
    SUM_PRODUCT,
)

# Strategies tailored per semiring so floating error stays benign:
# bounded nonnegative reals for product semirings, bounded reals for
# tropical ones, booleans, and small ints for counting.
_VALUE_STRATEGIES = {
    SUM_PRODUCT.name: st.floats(0, 100, allow_nan=False),
    MIN_SUM.name: st.floats(-100, 100, allow_nan=False) | st.just(np.inf),
    MAX_SUM.name: st.floats(-100, 100, allow_nan=False) | st.just(-np.inf),
    MIN_PRODUCT.name: st.floats(0, 100, allow_nan=False) | st.just(np.inf),
    MAX_PRODUCT.name: st.floats(0, 100, allow_nan=False),
    BOOLEAN.name: st.booleans(),
    COUNTING.name: st.integers(0, 1000),
    LOG_PROB.name: st.floats(-50, 5, allow_nan=False) | st.just(-np.inf),
}

_SEMIRINGS = [
    SUM_PRODUCT, MIN_SUM, MAX_SUM, MIN_PRODUCT, MAX_PRODUCT, BOOLEAN,
    COUNTING, LOG_PROB,
]


def _triple(semiring):
    value = _VALUE_STRATEGIES[semiring.name]
    return st.tuples(value, value, value)


def _check(semiring, lhs, rhs):
    assert semiring.close(
        np.asarray(lhs, dtype=semiring.dtype),
        np.asarray(rhs, dtype=semiring.dtype),
        rtol=1e-7,
        atol=1e-7,
    ), f"{semiring.name}: {lhs} != {rhs}"


def _law_factories(s):
    """Build the five law checkers for one semiring via closures
    (hypothesis rejects default-argument capture)."""

    def plus_assoc(abc):
        a, b, c = abc
        _check(s, s.plus(s.plus(a, b), c), s.plus(a, s.plus(b, c)))

    def plus_comm(abc):
        a, b, _ = abc
        _check(s, s.plus(a, b), s.plus(b, a))

    def times_assoc(abc):
        a, b, c = abc
        _check(s, s.times(s.times(a, b), c), s.times(a, s.times(b, c)))

    def times_comm(abc):
        a, b, _ = abc
        _check(s, s.times(a, b), s.times(b, a))

    def distributive(abc):
        a, b, c = abc
        _check(
            s,
            s.times(a, s.plus(b, c)),
            s.plus(s.times(a, b), s.times(a, c)),
        )

    return {
        "plus_associative": plus_assoc,
        "plus_commutative": plus_comm,
        "times_associative": times_assoc,
        "times_commutative": times_comm,
        "distributive": distributive,
    }


def _make_law_tests():
    # One generated test per (semiring, law) keeps failures attributable.
    tests = {}
    for semiring in _SEMIRINGS:
        decorate = settings(max_examples=60, deadline=None)
        for law_name, law in _law_factories(semiring).items():
            wrapped = decorate(given(_triple(semiring))(law))
            tests[f"test_{semiring.name}_{law_name}"] = wrapped
    return tests


globals().update(_make_law_tests())


@given(st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_aggregate_matches_sequential_reduce(values):
    """Grouped aggregation equals a left fold with plus."""
    arr = np.asarray(values)
    expected = 0.0
    for v in values:
        expected += v
    got = SUM_PRODUCT.reduce(arr)
    assert abs(got - expected) < 1e-7 * max(1.0, abs(expected))


@given(
    st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=30),
    st.integers(1, 5),
)
@settings(max_examples=50, deadline=None)
def test_grouped_min_matches_python_min(values, n_groups):
    arr = np.asarray(values)
    ids = np.arange(len(values)) % n_groups
    got = MIN_SUM.aggregate(arr, ids, n_groups)
    for g in range(n_groups):
        members = [v for i, v in enumerate(values) if i % n_groups == g]
        expected = min(members) if members else np.inf
        assert got[g] == expected
