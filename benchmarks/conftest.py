"""Benchmark-suite configuration.

Scale knobs: the environment variable ``MPF_BENCH_SCALE`` multiplies
the supply-chain scale used by the figure benches (default keeps the
whole suite in the minutes range; 1.0 reproduces the paper's Table 1
sizes and will take correspondingly long).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Make the sibling _harness module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))

SUPPLY_SCALE = float(os.environ.get("MPF_BENCH_SCALE", "0.02"))
