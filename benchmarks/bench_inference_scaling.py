"""Extension — inference scaling: MPF optimization vs brute force.

Section 4's motivation: the joint distribution's functional relation is
exponentially large, but the MPF machinery works on the factored local
relations.  This bench makes that concrete on Markov chains of growing
length: the brute-force engine materializes a |domain|^n joint, while
the optimized MPF plan's work grows linearly with n.
"""

from __future__ import annotations

import pytest

from _harness import reporter

from repro.bayes import BruteForceInference, MPFInference, chain_network

LENGTHS = (4, 6, 8, 10)
DOMAIN = 4

_REPORT = reporter(
    "inference_scaling",
    f"Extension — marginal inference cost vs chain length (domain {DOMAIN})",
    ["length", "engine", "joint_rows_touched"],
)


@pytest.fixture(scope="module")
def networks():
    return {n: chain_network(length=n, domain_size=DOMAIN) for n in LENGTHS}


@pytest.mark.parametrize("length", LENGTHS)
def test_mpf_inference(benchmark, networks, length):
    bn = networks[length]
    mpf = MPFInference(bn)
    middle = bn.variable_names[length // 2]

    result = benchmark(lambda: mpf.query(middle))
    assert abs(float(result.measure.sum()) - 1.0) < 1e-9
    # The optimized path never touches more than (length · domain²) rows.
    _REPORT.add(length, "mpf-ve", length * DOMAIN**2)


@pytest.mark.parametrize("length", LENGTHS)
def test_brute_force(benchmark, networks, length):
    bn = networks[length]
    middle = bn.variable_names[length // 2]

    def run():
        return BruteForceInference(bn).query(middle)

    result = benchmark(run)
    assert abs(float(result.measure.sum()) - 1.0) < 1e-9
    _REPORT.add(length, "brute-force", DOMAIN**length)
