"""Table 2 — Ordering Heuristics Experiment Result.

Paper setup: three views (star exactly like Figure 6, linear with the
common variable removed, multistar with hubs each touching three
tables); N = 5 tables, every variable of domain size 10, all
functional relations complete.  A query on the first variable of the
linear section.  Reported: the estimated cost of the plan selected by
nonlinear CS+ (the optimum of its space) and by VE under each
heuristic / heuristic combination, plain and extended.

Expected shape (paper Table 2): plain degree is catastrophic on star
(and bad on multistar); width is close to optimal; elim-cost sits
between; every extended variant reaches the nonlinear-CS+ optimum.

The benchmark times the *optimizer* (plan selection); the reproduced
table of plan costs lands in ``benchmarks/out/table2_ordering.*``.
"""

from __future__ import annotations

import pytest

from _harness import reporter

from repro.datagen import linear_view, multistar_view, star_view
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination

N_TABLES = 5
DOMAIN = 10

VIEWS = {
    "star": star_view,
    "multistar": multistar_view,
    "linear": linear_view,
}
ORDERINGS = [
    ("nonlinear_cs+", None, False),
    ("ve(deg)", "degree", False),
    ("ve(deg)_ext", "degree", True),
    ("ve(width)", "width", False),
    ("ve(width)_ext", "width", True),
    ("ve(elim_cost)", "elim_cost", False),
    ("ve(elim_cost)_ext", "elim_cost", True),
    ("ve(deg&width)", "degree+width", False),
    ("ve(deg&width)_ext", "degree+width", True),
    ("ve(deg&elim_cost)", "degree+elim_cost", False),
    ("ve(deg&elim_cost)_ext", "degree+elim_cost", True),
]

_REPORT = reporter(
    "table2_ordering",
    f"Table 2 — plan cost per ordering (N={N_TABLES}, domain {DOMAIN}, "
    "query on first linear variable)",
    ["ordering", "star", "multistar", "linear"],
)
_COSTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module")
def instances():
    return {
        kind: maker(n_tables=N_TABLES, domain_size=DOMAIN)
        for kind, maker in VIEWS.items()
    }


def _optimizer(heuristic, extended):
    if heuristic is None:
        return CSPlusNonlinear()
    return VariableElimination(heuristic, extended=extended)


@pytest.mark.parametrize(
    "ordering,heuristic,extended",
    ORDERINGS,
    ids=[o[0] for o in ORDERINGS],
)
@pytest.mark.parametrize("kind", list(VIEWS))
def test_table2(benchmark, instances, kind, ordering, heuristic, extended):
    view = instances[kind]
    spec = QuerySpec(
        tables=view.tables, query_vars=(view.chain_variables[0],)
    )

    def plan():
        return _optimizer(heuristic, extended).optimize(spec, view.catalog)

    result = benchmark(plan)
    benchmark.extra_info.update(plan_cost=result.cost)
    _COSTS.setdefault(ordering, {})[kind] = result.cost
    row = _COSTS[ordering]
    if len(row) == len(VIEWS):
        _REPORT.add(
            ordering, row["star"], row["multistar"], row["linear"]
        )
