"""Table 3 — Random Heuristic Experiment Result.

Paper setup: the same three views and query as Table 2, but the
elimination order is chosen uniformly at random; ten runs, reporting
mean plan cost ± a 95% confidence interval, with and without the
space extension.

Expected shape (paper): the extension improves the random-order mean
dramatically, yet the optimum stays outside the confidence interval in
both cases — elimination ordering still matters in the extended space.
"""

from __future__ import annotations

import math

import pytest

from _harness import reporter

from repro.datagen import linear_view, multistar_view, star_view
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination

N_TABLES = 5
DOMAIN = 10
N_RUNS = 10

VIEWS = {
    "star": star_view,
    "multistar": multistar_view,
    "linear": linear_view,
}

_REPORT = reporter(
    "table3_random",
    f"Table 3 — random orderings, {N_RUNS} runs, mean ± 95% CI",
    ["ordering", "view", "mean_cost", "ci95_half_width", "optimum",
     "optimum_inside_ci"],
)


@pytest.fixture(scope="module")
def instances():
    return {
        kind: maker(n_tables=N_TABLES, domain_size=DOMAIN)
        for kind, maker in VIEWS.items()
    }


def _stats(costs):
    n = len(costs)
    mean = sum(costs) / n
    variance = sum((c - mean) ** 2 for c in costs) / (n - 1)
    half_width = 1.96 * math.sqrt(variance / n)
    return mean, half_width


@pytest.mark.parametrize("extended", [False, True], ids=["plain", "ext"])
@pytest.mark.parametrize("kind", list(VIEWS))
def test_table3(benchmark, instances, kind, extended):
    view = instances[kind]
    spec = QuerySpec(
        tables=view.tables, query_vars=(view.chain_variables[0],)
    )

    def ten_runs():
        return [
            VariableElimination("random", extended=extended, seed=s)
            .optimize(spec, view.catalog)
            .cost
            for s in range(N_RUNS)
        ]

    costs = benchmark.pedantic(ten_runs, rounds=3, iterations=1)
    mean, half_width = _stats(costs)
    optimum = CSPlusNonlinear().optimize(spec, view.catalog).cost
    inside = abs(mean - optimum) <= half_width
    benchmark.extra_info.update(
        mean_cost=mean, ci95=half_width, optimum=optimum
    )
    label = "VE(random)_ext" if extended else "VE(random)"
    _REPORT.add(label, kind, mean, half_width, optimum, inside)
