"""Figure 7 — Plan Linearity Experiment.

Paper setup: on the supply-chain schema, run
    Q1: select cid, SUM(inv) from invest group by cid
    Q2: select tid, SUM(inv) from invest group by tid
with linear CS+ and nonlinear CS+ plans while sweeping the density of
the ``ctdeals`` relation.  Expected shape: as density grows, nonlinear
plans win for Q1 (Eq. 1 fails for cid) while Q2's linear and nonlinear
times coincide (Eq. 1 holds for tid).

Each benchmark times the *execution* of the chosen plan; simulated-IO
cost units and the Eq. 1 verdict land in ``benchmarks/out/fig07*``.
"""

from __future__ import annotations

import pytest

from conftest import SUPPLY_SCALE
from _harness import reporter

from repro.algebra.groupindex import DEFAULT_GROUP_INDEX_CACHE
from repro.datagen import supply_chain
from repro.optimizer import (
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    linearity_test,
)
from repro.plans import Executor
from repro.semiring import SUM_PRODUCT
from repro.storage import IOStats

DENSITIES = (0.2, 0.6, 1.0)
QUERIES = {"Q1": "cid", "Q2": "tid"}
PLANNERS = {"linear": CSPlusLinear, "nonlinear": CSPlusNonlinear}

_REPORT = reporter(
    "fig07_linearity",
    "Figure 7 — evaluation cost vs ctdeals density "
    f"(supply chain scale {SUPPLY_SCALE})",
    ["query", "variable", "density", "plan", "est_cost", "sim_elapsed",
     "eq1_linear_admissible"],
)


@pytest.fixture(scope="module")
def instances():
    import math

    # sqrt domain scaling keeps the ctdeals grid proportionate to the
    # list tables, as at Table 1 scale (see datagen.supply_chain).
    return {
        density: supply_chain(
            scale=SUPPLY_SCALE,
            ctdeals_density=density,
            seed=7,
            domain_scale=math.sqrt(SUPPLY_SCALE),
        )
        for density in DENSITIES
    }


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("query", list(QUERIES))
@pytest.mark.parametrize("planner", list(PLANNERS))
def test_fig07(benchmark, instances, query, density, planner):
    sc = instances[density]
    variable = QUERIES[query]
    spec = QuerySpec(tables=sc.tables, query_vars=(variable,))
    result = PLANNERS[planner]().optimize(spec, sc.catalog)
    executor = Executor(sc.catalog, SUM_PRODUCT)

    def run():
        stats = IOStats()
        executor.pool.clear()
        out, _ = executor.run(result.plan, stats)
        return out, stats

    kernel_before = DEFAULT_GROUP_INDEX_CACHE.counters()
    out, stats = benchmark(run)
    hits, misses, _ = DEFAULT_GROUP_INDEX_CACHE.counters()
    # Record the kernel cache traffic this figure's executions drove
    # (module-scoped catalogs persist across the sweep, so probe-side
    # sorts and base-table group indexes are reused between cells).
    _REPORT.metrics.counter("kernel.groupindex_hits").inc(
        hits - kernel_before[0]
    )
    _REPORT.metrics.counter("kernel.groupindex_misses").inc(
        misses - kernel_before[1]
    )
    verdict = linearity_test(sc.catalog, variable).linear_admissible
    benchmark.extra_info.update(
        est_cost=result.cost,
        sim_elapsed=stats.elapsed(),
        eq1_linear_admissible=verdict,
    )
    _REPORT.add(
        query, variable, density, planner, result.cost, stats.elapsed(),
        verdict,
    )
