"""Extension — serving-runtime throughput under admission control.

``repro.serve`` fronts the engine with per-tenant admission control,
bounded queues, load shedding, deadline propagation, and a shared
prepared-plan cache (``docs/serving.md``).  This bench drives seeded
request mixes through the deterministic ``run_workload`` driver at two
load levels — saturating and light — and records the admission
outcome split, the simulated makespan, and the plan-cache hit count.

Everything runs on the virtual cost clock, so every recorded cell is
a pure function of the seeds: drift caught by the perf gate is a real
admission/planner/runtime change, not scheduler noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import reporter

from repro.cli import _build_database
from repro.obs.slo import quantile
from repro.serve import ServeRequest, ServingRuntime, TenantSpec, VirtualClock

SCALE, SEED = 0.004, 7
GROUP_VARS = ("pid", "sid", "wid", "cid", "tid")

# (label, mean inter-arrival gap): "overload" packs arrivals tighter
# than the mean query cost so shedding must happen; "light" spaces
# them out so (almost) everything completes.
LOADS = (("overload", 2e4), ("light", 4e5))

_REPORT = reporter(
    "serving",
    "Serving runtime — admission outcomes and makespan by load level",
    ["load", "mix", "completed", "shed", "failed", "plan_hits",
     "duration", "mean_wait", "lat_p50", "lat_p99", "wait_p50",
     "wait_p99"],
)


def _tenants():
    return [
        TenantSpec("gold", priority=2, queue_depth=16, slo=6e5),
        TenantSpec("silver", priority=1, rate=8e-6, burst=4.0,
                   queue_depth=8),
        TenantSpec("bulk", priority=0, queue_depth=4),
    ]


def _workload(db, gap, mix):
    rng = np.random.default_rng(99)
    names = ["gold", "silver", "bulk"]
    requests, arrival = [], 0.0
    for _ in range(mix):
        arrival += float(rng.exponential(gap))
        var = GROUP_VARS[int(rng.integers(len(GROUP_VARS)))]
        sql = f"select {var}, sum(inv) from invest group by {var}"
        if rng.random() < 0.25:
            sql = (
                f"select {var}, sum(inv) from invest "
                f"where tid = 0 group by {var}"
            )
        tenant = names[int(rng.integers(len(names)))]
        requests.append(ServeRequest(
            tenant=tenant, query=db._select_query(sql), arrival=arrival,
        ))
    return requests


def _soak(gap, mix):
    clock = VirtualClock()
    db = _build_database(SCALE, SEED, clock=clock)
    runtime = ServingRuntime(db, _tenants(), clock=clock)
    report = runtime.run_workload(_workload(db, gap, mix))
    return db, report


@pytest.mark.parametrize("load,gap", LOADS, ids=[lo for lo, _ in LOADS])
def test_serving_soak(benchmark, load, gap):
    mix = 200

    def run():
        return _soak(gap, mix)

    db, report = benchmark(run)
    assert len(report.outcomes) == mix
    if load == "overload":
        # The saturating mix must exercise the shedding paths.
        assert len(report.shed) > 20
    else:
        # A lightly loaded server admits nearly everything.
        assert len(report.completed) > mix * 0.9

    # The virtual clock makes the whole soak replayable: a second run
    # lands on the identical outcome split and makespan.
    db2, report2 = _soak(gap, mix)
    assert len(report2.completed) == len(report.completed)
    assert len(report2.shed) == len(report.shed)
    assert report2.duration == report.duration

    snap = db.metrics.snapshot().to_dict()
    hits = sum(
        v["value"] for k, v in snap.items()
        if k.startswith("serve.plan_cache.hits")
    )
    waits = [o.queue_wait for o in report.completed]
    mean_wait = sum(waits) / len(waits) if waits else 0.0
    # End-to-end latency (arrival -> completion) and queue-wait tail
    # quantiles over the completed population; nearest-rank, so every
    # cell is deterministic on the virtual clock.
    lats = [o.latency for o in report.completed if o.latency is not None]

    benchmark.extra_info.update(
        completed=len(report.completed), shed=len(report.shed)
    )
    _REPORT.metrics.counter("bench.serving_runs").inc()
    _REPORT.add(
        load, mix, len(report.completed), len(report.shed),
        len(report.failed), int(hits), report.duration,
        round(mean_wait, 1),
        round(quantile(lats, 0.50), 1), round(quantile(lats, 0.99), 1),
        round(quantile(waits, 0.50), 1), round(quantile(waits, 0.99), 1),
    )
