"""Shared reporting for the benchmark suite.

Each benchmark regenerates one paper table/figure.  Besides the
pytest-benchmark timings, every bench row (the series the paper plots)
is collected into a :class:`TableReporter` which writes an aligned text
table, a CSV, and a schema-tagged JSON bench document (the
``repro.bench.v1`` shape of :mod:`repro.obs.export`, embedding the
reporter's metrics registry) under ``benchmarks/out/`` at interpreter
exit — so ``pytest benchmarks/ --benchmark-only`` leaves the
reproduced tables/figures on disk regardless of output capturing, and
CI can validate every ``*.json`` with ``python -m repro.obs.validate``.
"""

from __future__ import annotations

import atexit
import csv
import json
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

_REPORTERS: dict[str, "TableReporter"] = {}


class TableReporter:
    """Collects rows for one experiment and flushes them at exit."""

    def __init__(self, name: str, title: str, columns: list[str]):
        self.name = name
        self.title = title
        self.columns = columns
        self.rows: list[list] = []
        self._metrics = None

    @property
    def metrics(self):
        """Lazily created registry for benchmark-local ``bench.*`` metrics."""
        if self._metrics is None:
            from repro.obs.metrics import MetricsRegistry

            self._metrics = MetricsRegistry()
        return self._metrics

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: expected {len(self.columns)} values, got "
                f"{len(values)}"
            )
        self.rows.append(list(values))

    # ------------------------------------------------------------------
    def formatted(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1e6 or abs(value) < 1e-3:
                    return f"{value:.4g}"
                return f"{value:,.2f}"
            return str(value)

        cells = [self.columns] + [
            [fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append(
                "  ".join(v.ljust(widths[i]) for i, v in enumerate(row))
            )
        return "\n".join(lines)

    def flush(self) -> None:
        if not self.rows:
            return
        OUT_DIR.mkdir(exist_ok=True)
        text_path = OUT_DIR / f"{self.name}.txt"
        text_path.write_text(self.formatted() + "\n")
        with open(OUT_DIR / f"{self.name}.csv", "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        from repro.obs.export import bench_document
        from repro.obs.history import current_git_sha

        # Provenance for the benchmark-history store: the suite name
        # keys the BENCH_<suite>.json file and the sha ties each run
        # to the commit that produced it.
        doc = bench_document(
            self.name, self.title, self.columns, self.rows,
            metrics=self._metrics,
            git_sha=current_git_sha(Path(__file__).parent),
            suite=self.name,
        )
        (OUT_DIR / f"{self.name}.json").write_text(
            json.dumps(doc, sort_keys=True, indent=2, default=float) + "\n"
        )


def reporter(name: str, title: str, columns: list[str]) -> TableReporter:
    """Get-or-create the reporter for an experiment."""
    if name not in _REPORTERS:
        _REPORTERS[name] = TableReporter(name, title, columns)
    return _REPORTERS[name]


@atexit.register
def _flush_all() -> None:  # pragma: no cover - exit hook
    for rep in _REPORTERS.values():
        rep.flush()
