"""Figure 8 — Extended Variable Elimination Space.

Paper setup: sweep the total database scale and compare, for
    Q1: select cid, ...   Q2: select sid, ...   Q3: select wid, ...
the plan quality (evaluation cost) of nonlinear CS+ against VE with
the degree heuristic, with and without the space extension.

Expected shape (paper):
* Q1 — degree already finds the CS+ optimum;
* Q2 — degree alone is suboptimal; the extension recovers the optimum;
* Q3 — degree misses the optimum even extended (no heuristic is
  universally right), but extended is never worse than plain.
"""

from __future__ import annotations

import math

import pytest

from conftest import SUPPLY_SCALE
from _harness import reporter

from repro.datagen import supply_chain
from repro.optimizer import CSPlusNonlinear, QuerySpec, VariableElimination
from repro.plans import Executor
from repro.semiring import SUM_PRODUCT
from repro.storage import IOStats

SCALES = tuple(SUPPLY_SCALE * f for f in (0.5, 1.0, 2.0))
QUERIES = {"Q1": "cid", "Q2": "sid", "Q3": "wid"}
ALGORITHMS = {
    "cs+nonlinear": lambda: CSPlusNonlinear(),
    "ve(degree)": lambda: VariableElimination("degree"),
    "ve(degree)+ext": lambda: VariableElimination("degree", extended=True),
}

_REPORT = reporter(
    "fig08_extended_space",
    "Figure 8 — plan quality vs DB scale: CS+ vs VE(degree) ± extension",
    ["query", "variable", "scale", "algorithm", "est_cost", "sim_elapsed"],
)


@pytest.fixture(scope="module")
def instances():
    return {
        scale: supply_chain(
            scale=scale, seed=7, domain_scale=math.sqrt(scale)
        )
        for scale in SCALES
    }


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query", list(QUERIES))
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_fig08(benchmark, instances, query, scale, algorithm):
    sc = instances[scale]
    variable = QUERIES[query]
    spec = QuerySpec(tables=sc.tables, query_vars=(variable,))
    result = ALGORITHMS[algorithm]().optimize(spec, sc.catalog)
    executor = Executor(sc.catalog, SUM_PRODUCT)

    def run():
        stats = IOStats()
        executor.pool.clear()
        executor.run(result.plan, stats)
        return stats

    stats = benchmark(run)
    benchmark.extra_info.update(
        est_cost=result.cost, sim_elapsed=stats.elapsed()
    )
    _REPORT.add(
        query, variable, round(scale, 4), algorithm, result.cost,
        stats.elapsed(),
    )
