"""Extension — batch execution with plan-DAG sharing (Section 6).

The paper's workload machinery shares work across queries via
materialized caches; ``Database.run_batch`` shares it at the physical
plan level instead: a batch of queries is lowered into one
common-subexpression-eliminated DAG evaluated through a single
``ExecutionContext``, so shared subplans execute once and repeats are
served from the runtime memo.

This bench poses batches of overlapping single-variable queries (the
Section 6 workload shape) and compares one shared batch against
running the same queries independently on a cold pool.

Expected shape: independent cost scales linearly with batch size while
the batch pays roughly one query's IO plus memo hits — page reads and
elapsed stay near-flat as the batch grows.
"""

from __future__ import annotations

import pytest

from conftest import SUPPLY_SCALE
from _harness import reporter

from repro import Database
from repro.datagen import supply_chain
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT

BATCH_SIZES = (1, 2, 4, 8, 16)
VARIABLES = ("wid", "cid", "tid", "sid", "pid")

_REPORT = reporter(
    "batch_sharing",
    "Section 6 extension — run_batch vs independent query execution",
    ["batch_size", "indep_reads", "batch_reads", "indep_elapsed",
     "batch_elapsed", "shared_subplans", "memo_hits", "speedup"],
)


def _make_db():
    sc = supply_chain(scale=SUPPLY_SCALE, seed=42)
    db = Database()
    for t in sc.tables:
        db.register(sc.catalog.relation(t))
    db.create_view("invest", tuple(sc.tables))
    return db, tuple(sc.tables)


def _queries(tables, n):
    view = MPFView("invest", tables, SUM_PRODUCT)
    return [
        MPFQuery(view, (VARIABLES[i % len(VARIABLES)],))
        for i in range(n)
    ]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_sharing(benchmark, batch_size):
    # Independent baseline: fresh engine (cold pool) per query.
    indep_reads = 0
    indep_elapsed = 0.0
    db, tables = _make_db()
    for query in _queries(tables, batch_size):
        solo_db, _ = _make_db()
        report = solo_db.run_query(query)
        indep_reads += report.exec_stats.page_reads
        indep_elapsed += report.exec_stats.elapsed()

    def run_batch():
        fresh, tbls = _make_db()
        return fresh.run_batch(_queries(tbls, batch_size))

    batch = benchmark(run_batch)
    batch_reads = batch.stats.page_reads
    batch_elapsed = batch.stats.elapsed()

    assert batch_reads <= indep_reads
    assert batch_elapsed <= indep_elapsed
    if batch_size > len(VARIABLES):
        # Repeated queries must be answered from the memo.
        assert batch.memo_hits > 0

    benchmark.extra_info.update(
        indep_elapsed=indep_elapsed, batch_elapsed=batch_elapsed
    )
    _REPORT.metrics.counter("bench.batch_runs").inc()
    _REPORT.metrics.counter("bench.memo_hits").inc(batch.memo_hits)
    _REPORT.add(
        batch_size, indep_reads, batch_reads, indep_elapsed,
        batch_elapsed, batch.shared_subplans, batch.memo_hits,
        indep_elapsed / max(batch_elapsed, 1.0),
    )
