"""Figure 10 — Optimization Time Tradeoff Experiment (incl. §7.4 CS).

Paper setup: the three synthetic views with N = 7 tables; query every
variable in the linear part; plot, per algorithm, the average
estimated evaluation cost of the chosen plan against the average time
required to derive it.  Points closer to the origin are best.

Expected shape (paper):
* CS is dramatically worse in plan quality than everything else
  (the Section 7.4 comparison);
* nonlinear plans beat linear plans by about an order of magnitude;
* VE optimizes much faster than nonlinear CS+, and with the extension
  still reaches comparable plan quality.
"""

from __future__ import annotations

import time

import pytest

from _harness import reporter

from repro.datagen import linear_view, multistar_view, star_view
from repro.optimizer import (
    CSOptimizer,
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    VariableElimination,
)

N_TABLES = 7
DOMAIN = 10

VIEWS = {
    "star": star_view,
    "multistar": multistar_view,
    "linear": linear_view,
}
ALGORITHMS = {
    "cs": lambda: CSOptimizer(),
    "cs+linear": lambda: CSPlusLinear(),
    "cs+nonlinear": lambda: CSPlusNonlinear(),
    "ve(degree)": lambda: VariableElimination("degree"),
    "ve(degree)+ext": lambda: VariableElimination("degree", extended=True),
    "ve(width)": lambda: VariableElimination("width"),
    "ve(width)+ext": lambda: VariableElimination("width", extended=True),
    "ve(elim_cost)": lambda: VariableElimination("elim_cost"),
}

_REPORT = reporter(
    "fig10_opt_cost",
    f"Figure 10 — avg plan cost vs avg optimization time (N={N_TABLES}, "
    "all linear-part query variables)",
    ["view", "algorithm", "avg_plan_cost", "avg_opt_ms",
     "avg_plans_considered"],
)


@pytest.fixture(scope="module")
def instances():
    return {
        kind: maker(n_tables=N_TABLES, domain_size=DOMAIN)
        for kind, maker in VIEWS.items()
    }


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
@pytest.mark.parametrize("kind", list(VIEWS))
def test_fig10(benchmark, instances, kind, algorithm):
    view = instances[kind]
    specs = [
        QuerySpec(tables=view.tables, query_vars=(v,))
        for v in view.chain_variables
    ]

    def optimize_all():
        return [
            ALGORITHMS[algorithm]().optimize(spec, view.catalog)
            for spec in specs
        ]

    results = benchmark.pedantic(optimize_all, rounds=2, iterations=1)
    avg_cost = sum(r.cost for r in results) / len(results)
    avg_ms = 1e3 * sum(r.planning_seconds for r in results) / len(results)
    avg_considered = sum(r.plans_considered for r in results) / len(results)
    benchmark.extra_info.update(
        avg_plan_cost=avg_cost,
        avg_opt_ms=avg_ms,
        avg_plans_considered=avg_considered,
    )
    _REPORT.add(kind, algorithm, avg_cost, avg_ms, avg_considered)
