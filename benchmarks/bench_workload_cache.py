"""Extension — the MPF Workload Problem objective (Section 6).

The paper defines the objective ``C(S) + E[cost(Q(q, S))]`` but reports
no workload experiment; this bench charts it: for workloads of
repeated single-variable queries, compare the VE-cache (materialize
once, answer from calibrated tables) against re-optimizing every query
from base tables, as the expected number of posed queries grows.

Expected shape: the baseline scales linearly with the number of posed
queries while the cache pays a one-time materialization cost plus a
tiny per-query aggregate — the crossover arrives within a handful of
queries.
"""

from __future__ import annotations

import pytest

from conftest import SUPPLY_SCALE
from _harness import reporter

from repro.datagen import supply_chain
from repro.optimizer import CSPlusNonlinear, QuerySpec
from repro.semiring import SUM_PRODUCT
from repro.workload import MPFWorkload, build_ve_cache

N_QUERIES = (1, 5, 25, 125)

_REPORT = reporter(
    "workload_cache",
    "Section 6 extension — workload objective: VE-cache vs re-optimize",
    ["queries_posed", "cache_objective", "baseline_objective",
     "cache_advantage"],
)


@pytest.fixture(scope="module")
def setting():
    sc = supply_chain(scale=SUPPLY_SCALE, seed=42)
    relations = [sc.catalog.relation(t) for t in sc.tables]
    cache = build_ve_cache(relations, SUM_PRODUCT)
    variables = ("pid", "sid", "wid", "cid", "tid")
    per_query_baseline = {
        v: CSPlusNonlinear()
        .optimize(
            QuerySpec(tables=sc.tables, query_vars=(v,)), sc.catalog
        )
        .cost
        for v in variables
    }
    return sc, cache, variables, per_query_baseline


@pytest.mark.parametrize("n_queries", N_QUERIES)
def test_workload_objective(benchmark, setting, n_queries):
    sc, cache, variables, per_query_baseline = setting
    workload = MPFWorkload.uniform(variables)

    def evaluate():
        expected_cache = n_queries * workload.expected_cost(
            lambda q: cache.query_cost(q.variable)
        )
        cache_total = cache.total_tuples() + expected_cache
        baseline_total = n_queries * workload.expected_cost(
            lambda q: per_query_baseline[q.variable]
        )
        return cache_total, baseline_total

    cache_total, baseline_total = benchmark(evaluate)
    benchmark.extra_info.update(
        cache=cache_total, baseline=baseline_total
    )
    _REPORT.add(
        n_queries, cache_total, baseline_total,
        baseline_total / cache_total,
    )
