"""Extension — partition-parallel scaling of the 16-query batch.

The scheduled execution path decomposes operators over hash-partitioned
tables into per-shard tasks and models their parallel packing with a
critical-path clock (``docs/parallelism.md``).  This bench runs the
16-query batch used by the differential suites on a partitioned
catalog at increasing worker counts and records the modeled makespan.

Expected shape: ``serial_elapsed`` (total work), page reads, and every
structural counter are identical at every worker count — only the
makespan shrinks.  The acceptance bar for PR 6 is a >= 2x modeled
speedup at 4 workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import reporter

from repro import Database
from repro.data import complete_relation, var
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT

WORKER_COUNTS = (1, 2, 4, 8)

_REPORT = reporter(
    "parallel_scaling",
    "Partition-parallel scaling — modeled makespan of the 16-query batch",
    ["workers", "tasks", "serial_elapsed", "makespan", "speedup",
     "page_reads", "shard_tasks"],
)


def _make_db(workers, metrics=None):
    rng = np.random.default_rng(20260806)
    a, b, c, d = var("a", 6), var("b", 5), var("c", 4), var("d", 3)
    db = Database(metrics=metrics, workers=workers)
    db.register(complete_relation([a, b], rng=rng, name="r_ab"))
    db.register(complete_relation([b, c], rng=rng, name="r_bc"))
    db.register(complete_relation([c, d], rng=rng, name="r_cd"))
    db.catalog.partition_table("r_ab", "b", 4)
    db.catalog.partition_table("r_bc", "b", 4)
    db.catalog.partition_table("r_cd", "c", 2)
    db.create_view("v", ("r_ab", "r_bc", "r_cd"))
    return db


def _queries(db):
    view = MPFView("v", db._views["v"].view_tables, SUM_PRODUCT)
    queries = [MPFQuery(view, (g,)) for g in ("a", "b", "c", "d")]
    for g, sel in (("a", {"b": 1}), ("b", {"c": 0}), ("c", {"d": 2}),
                   ("d", {"a": 3})):
        queries.append(MPFQuery(view, (g,), selections=sel))
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")):
        queries.append(MPFQuery(view, pair))
    queries.append(MPFQuery(view, ("a",), selections={"a": 0}))
    queries.append(MPFQuery(view, ("b", "d")))
    queries.append(MPFQuery(view, ("a", "c")))
    queries.append(MPFQuery(view, ("b",), selections={"d": 1}))
    return queries


def _shard_tasks(workers):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    db = _make_db(workers, metrics=registry)
    db.run_batch(_queries(db))
    return int(registry.snapshot().get("shard.tasks"))


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_scaling(benchmark, workers):
    def run():
        db = _make_db(workers)
        return db.run_batch(_queries(db))

    batch = benchmark(run)
    schedule = batch.schedule
    assert schedule is not None and schedule.workers == workers

    # Total work is worker-independent; only the packing changes.
    db1 = _make_db(1)
    baseline = db1.run_batch(_queries(db1))
    assert schedule.tasks == baseline.schedule.tasks
    assert schedule.serial_elapsed == pytest.approx(
        baseline.schedule.serial_elapsed
    )
    if workers >= 4:
        # PR 6 acceptance: >= 2x modeled speedup at 4 workers.
        assert schedule.speedup >= 2.0

    # One instrumented run to read the structural shard counters
    # (worker-independent by the determinism contract).
    shard_tasks = _shard_tasks(workers)

    benchmark.extra_info.update(
        makespan=schedule.makespan, speedup=schedule.speedup
    )
    _REPORT.metrics.counter("bench.parallel_runs").inc()
    _REPORT.add(
        workers, schedule.tasks, schedule.serial_elapsed,
        schedule.makespan, round(schedule.speedup, 3),
        batch.stats.page_reads, shard_tasks,
    )


def test_parallel_scaling_hedged(benchmark):
    """Fault-tolerance overhead: the batch under seeded slow-worker
    faults with hedging enabled (``docs/robustness.md``).

    Results and structural counters are fault-invariant; the modeled
    makespan absorbs the (hedge-capped) straggler inflation.  Recorded
    as one extra row at the 4-worker point: same columns, with the
    fault run's own makespan/speedup.
    """
    from repro.plans.scheduler import TaskPolicy
    from repro.storage.faults import WorkerFaultInjector

    workers = 4
    policy = TaskPolicy(timeout=50_000.0, hedge_after=1_000.0)

    def run():
        db = _make_db(workers)
        db.task_policy = policy
        db.worker_faults = WorkerFaultInjector(
            seed=5, rate=0.25, kinds=("slow",)
        )
        return db.run_batch(_queries(db))

    batch = benchmark(run)
    schedule = batch.schedule

    # The straggler inflation is bounded by hedging, so the hedged run
    # still clears the 2x speedup bar against its own serial elapsed.
    assert schedule.speedup >= 2.0

    db1 = _make_db(1)
    baseline = db1.run_batch(_queries(db1))
    assert schedule.tasks == baseline.schedule.tasks
    # Structural reads are fault-invariant.
    assert batch.stats.page_reads == baseline.stats.page_reads

    shard_tasks = _shard_tasks(workers)
    benchmark.extra_info.update(
        makespan=schedule.makespan, speedup=schedule.speedup, hedged=True
    )
    _REPORT.metrics.counter("bench.parallel_runs").inc()
    _REPORT.add(
        workers, schedule.tasks, schedule.serial_elapsed,
        schedule.makespan, round(schedule.speedup, 3),
        batch.stats.page_reads, shard_tasks,
    )
