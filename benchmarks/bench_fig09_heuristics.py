"""Figure 9 — Ordering Heuristics Experiment.

Paper setup: on the supply-chain schema, sweep the database scale and
run
    Q1: select cid, SUM(inv) from invest group by cid
    Q2: select pid, SUM(inv) from invest group by pid
under VE with the width, degree, and elimination-cost heuristics.

Expected shape (paper): for Q1 width yields a worse plan than degree
and elim-cost; for Q2 all heuristics derive the same plan.
"""

from __future__ import annotations

import math

import pytest

from conftest import SUPPLY_SCALE
from _harness import reporter

from repro.datagen import supply_chain
from repro.optimizer import QuerySpec, VariableElimination
from repro.plans import Executor
from repro.semiring import SUM_PRODUCT
from repro.storage import IOStats

SCALES = tuple(SUPPLY_SCALE * f for f in (0.5, 1.0, 2.0))
QUERIES = {"Q1": "cid", "Q2": "pid"}
HEURISTICS = ("width", "degree", "elim_cost")

_REPORT = reporter(
    "fig09_heuristics",
    "Figure 9 — plan quality vs DB scale per ordering heuristic",
    ["query", "variable", "scale", "heuristic", "est_cost", "sim_elapsed",
     "elimination_order"],
)


@pytest.fixture(scope="module")
def instances():
    return {
        scale: supply_chain(
            scale=scale, seed=7, domain_scale=math.sqrt(scale)
        )
        for scale in SCALES
    }


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("query", list(QUERIES))
@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_fig09(benchmark, instances, query, scale, heuristic):
    sc = instances[scale]
    variable = QUERIES[query]
    spec = QuerySpec(tables=sc.tables, query_vars=(variable,))
    result = VariableElimination(heuristic).optimize(spec, sc.catalog)
    executor = Executor(sc.catalog, SUM_PRODUCT)

    def run():
        stats = IOStats()
        executor.pool.clear()
        executor.run(result.plan, stats)
        return stats

    stats = benchmark(run)
    benchmark.extra_info.update(
        est_cost=result.cost, sim_elapsed=stats.elapsed()
    )
    _REPORT.add(
        query, variable, round(scale, 4), heuristic, result.cost,
        stats.elapsed(), "→".join(result.extras["elimination_order"]),
    )
