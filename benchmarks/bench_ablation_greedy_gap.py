"""Ablation — how far is greedy CS+ from the true GDL optimum?

The paper proves CS+ is no worse than the single-root-GroupBy plan but
explicitly does not guarantee it finds the minimum of GDLPlan
(Section 5.2).  This ablation quantifies the gap: the exhaustive
(subset × live-variables) DP supplies the true optimum on small views,
and we report the ratio for CS+ (greedy four-candidate rule) and the
VE variants on the Table 2 views and on random schemas.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import reporter

from repro.catalog import Catalog
from repro.data import random_relation, var
from repro.datagen import linear_view, multistar_view, star_view
from repro.optimizer import (
    CSPlusNonlinear,
    ExhaustiveGDL,
    QuerySpec,
    VariableElimination,
)

_REPORT = reporter(
    "ablation_greedy_gap",
    "Ablation — plan cost relative to the exhaustive GDL optimum",
    ["workload", "algorithm", "avg_ratio_to_optimum", "worst_ratio",
     "avg_optimum_cost"],
)

ALGORITHMS = {
    "cs+nonlinear": lambda: CSPlusNonlinear(),
    "ve(width)": lambda: VariableElimination("width"),
    "ve(degree)+ext": lambda: VariableElimination("degree", extended=True),
}


def _random_specs(n_cases=8):
    cases = []
    for seed in range(n_cases):
        rng = np.random.default_rng(1000 + seed)
        n_vars = int(rng.integers(3, 5))
        variables = [
            var(f"x{i}", int(rng.integers(2, 5))) for i in range(n_vars)
        ]
        catalog = Catalog()
        names = []
        for t in range(int(rng.integers(3, 5))):
            arity = int(rng.integers(1, 3))
            chosen = sorted(rng.choice(n_vars, size=arity, replace=False))
            rel = random_relation(
                [variables[i] for i in chosen],
                float(rng.uniform(0.5, 1.0)),
                rng,
                name=f"t{t}",
            )
            names.append(catalog.register(rel))
        covered = sorted(
            {v for t in names for v in catalog.stats(t).variables}
        )
        cases.append(
            (catalog, QuerySpec(tables=tuple(names),
                                query_vars=(covered[0],)))
        )
    return cases


def _table2_specs():
    cases = []
    for maker in (star_view, multistar_view, linear_view):
        view = maker(n_tables=5, domain_size=10)
        cases.append(
            (
                view.catalog,
                QuerySpec(
                    tables=view.tables,
                    query_vars=(view.chain_variables[0],),
                ),
            )
        )
    return cases


@pytest.mark.parametrize("workload", ["table2_views", "random_schemas"])
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_greedy_gap(benchmark, workload, algorithm):
    cases = _table2_specs() if workload == "table2_views" else _random_specs()

    optima = [
        ExhaustiveGDL().optimize(spec, catalog).cost
        for catalog, spec in cases
    ]

    def run():
        return [
            ALGORITHMS[algorithm]().optimize(spec, catalog).cost
            for catalog, spec in cases
        ]

    costs = benchmark.pedantic(run, rounds=2, iterations=1)
    ratios = [c / o for c, o in zip(costs, optima)]
    benchmark.extra_info.update(
        avg_ratio=float(np.mean(ratios)), worst_ratio=float(np.max(ratios))
    )
    _REPORT.add(
        workload, algorithm, float(np.mean(ratios)), float(np.max(ratios)),
        float(np.mean(optima)),
    )
