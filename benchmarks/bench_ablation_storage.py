"""Ablation — the storage substrate's knobs.

Two sensitivity sweeps over the simulated engine, exercising the parts
of the stack that stand in for the paper's PostgreSQL testbed:

* **buffer pool size** — repeated queries against the same view hit or
  miss the cache depending on pool capacity: tiny pools re-read every
  page (cold every time), pools larger than the working set make the
  second run IO-free;
* **cost model** — plans chosen under the paper's §5.1 analytical
  model versus the page-IO model, executed on the simulated clock:
  both models should pick plans of comparable executed quality on this
  schema (the §5.1 model is a faithful proxy), which justifies using
  it throughout the reproduction.
"""

from __future__ import annotations

import pytest

from conftest import SUPPLY_SCALE
from _harness import reporter

from repro.cost import IOCostModel, SimpleCostModel
from repro.datagen import supply_chain
from repro.optimizer import CSPlusNonlinear, QuerySpec
from repro.plans import Executor
from repro.semiring import SUM_PRODUCT
from repro.storage import BufferPool, IOStats

POOL_PAGES = (16, 128, 1024, 8192)

_POOL_REPORT = reporter(
    "ablation_buffer_pool",
    "Ablation — repeated-query IO vs buffer pool size",
    ["pool_pages", "first_run_reads", "second_run_reads",
     "second_run_hits"],
)
_MODEL_REPORT = reporter(
    "ablation_cost_model",
    "Ablation — executed cost of plans chosen under each cost model",
    ["query", "model", "est_cost", "sim_elapsed"],
)


@pytest.fixture(scope="module")
def instance():
    return supply_chain(scale=SUPPLY_SCALE, seed=7)


@pytest.mark.parametrize("pool_pages", POOL_PAGES)
def test_buffer_pool_sensitivity(benchmark, instance, pool_pages):
    sc = instance
    spec = QuerySpec(tables=sc.tables, query_vars=("wid",))
    plan = CSPlusNonlinear().optimize(spec, sc.catalog).plan

    def run_twice():
        executor = Executor(
            sc.catalog, SUM_PRODUCT, pool=BufferPool(pool_pages)
        )
        first = IOStats()
        executor.run(plan, first)
        second = IOStats()
        executor.run(plan, second)
        return first, second

    first, second = benchmark(run_twice)
    benchmark.extra_info.update(
        first_reads=first.page_reads,
        second_reads=second.page_reads,
        second_hits=second.buffer_hits,
    )
    _POOL_REPORT.add(
        pool_pages, first.page_reads, second.page_reads,
        second.buffer_hits,
    )


@pytest.mark.parametrize("query", ["cid", "wid", "pid"])
@pytest.mark.parametrize(
    "model_name,model",
    [("simple", SimpleCostModel()), ("io", IOCostModel())],
    ids=["simple", "io"],
)
def test_cost_model_ablation(benchmark, instance, query, model_name, model):
    sc = instance
    spec = QuerySpec(tables=sc.tables, query_vars=(query,))
    result = CSPlusNonlinear().optimize(spec, sc.catalog, model)
    executor = Executor(sc.catalog, SUM_PRODUCT)

    def run():
        stats = IOStats()
        executor.pool.clear()
        executor.run(result.plan, stats)
        return stats

    stats = benchmark(run)
    benchmark.extra_info.update(
        est_cost=result.cost, sim_elapsed=stats.elapsed()
    )
    _MODEL_REPORT.add(query, model_name, result.cost, stats.elapsed())
